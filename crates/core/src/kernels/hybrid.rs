//! §4.4: the **warp/thread hybrid** the paper sketches as future work:
//! "we can define a threshold: if the average number of nonzero elements is
//! lower than the threshold, we use the thread-level SpTRSV to process the
//! set of rows; otherwise, we use the warp-level synchronization-free
//! SpTRSV."
//!
//! Preprocessing (host, unlike pure CapelliniSpTRSV) walks the matrix in
//! blocks of `WARP_SIZE` consecutive rows and emits one *task* per warp:
//!
//! * `ThreadBlock { base }` — the warp solves rows `base..base+WARP_SIZE`
//!   writing-first style (thread level), or
//! * `WarpRow { row }` — the warp solves one row, Algorithm-3 style —
//!   a dense block of 32 rows emits 32 such tasks.
//!
//! Both halves publish through the same `x`/`get_value` arrays, so the two
//! granularities interoperate freely. Liveness: task order follows row
//! order, warps activate in FIFO order, and each sub-state-machine is
//! individually live (Writing-First's finalize-first order; SyncFree's
//! cross-warp-only spins).

use capellini_simt::{
    BufU32, Effect, GpuDevice, LaneMem, LaunchStats, Pc, SimtError, WarpKernel, PC_EXIT,
};
use capellini_sparse::LowerTriangularCsr;

use crate::buffers::{DeviceCsr, SolveBuffers};
use crate::kernels::{run_on_fresh_device, SimSolve};

/// Default `nnz_row` threshold between thread-level and warp-level blocks.
/// Half a warp of useful lanes is where the warp-level mapping stops wasting
/// the machine.
pub const DEFAULT_THRESHOLD: f64 = 16.0;

// Dispatcher.
const P_LD_TASK: Pc = 0;

// Thread-level (writing-first) half: 10..27.
const T_LD_BEGIN: Pc = 10;
const T_LD_END: Pc = 11;
const T_OUTER: Pc = 12;
const T_LD_COL: Pc = 13;
const T_POLL: Pc = 14;
const T_BR_READY: Pc = 15;
const T_LD_VAL: Pc = 16;
const T_LD_X: Pc = 17;
const T_FMA: Pc = 18;
const T_LD_COL2: Pc = 19;
const T_BR_DIAG: Pc = 20;
const T_LD_B: Pc = 21;
const T_LD_DIAG: Pc = 22;
const T_DIV: Pc = 23;
const T_ST_X: Pc = 24;
const T_FENCE: Pc = 25;
const T_ST_FLAG: Pc = 26;

// Warp-level (syncfree) half: 40..59.
const W_LD_BEGIN: Pc = 40;
const W_LD_END: Pc = 41;
const W_STRIDE: Pc = 42;
const W_LD_COL: Pc = 43;
const W_POLL: Pc = 44;
const W_BR_READY: Pc = 45;
const W_LD_VAL: Pc = 46;
const W_LD_X: Pc = 47;
const W_FMA: Pc = 48;
const W_SH_STORE: Pc = 49;
const W_RED_CHECK: Pc = 50;
const W_RED_LOAD: Pc = 51;
const W_RED_STORE: Pc = 52;
const W_BR_LANE0: Pc = 53;
const W_LD_B: Pc = 54;
const W_LD_DIAG: Pc = 55;
const W_DIV: Pc = 56;
const W_ST_X: Pc = 57;
const W_FENCE: Pc = 58;
const W_ST_FLAG: Pc = 59;

/// One warp's work item, encoded `(base_row << 1) | is_thread_block`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Task {
    /// Thread-level rows `base..base+warp_size` (clamped to n).
    ThreadBlock {
        /// First row of the block.
        base: u32,
    },
    /// Warp-level single row.
    WarpRow {
        /// The row.
        row: u32,
    },
}

impl Task {
    fn encode(self) -> u32 {
        match self {
            Task::ThreadBlock { base } => (base << 1) | 1,
            Task::WarpRow { row } => row << 1,
        }
    }

    fn decode(v: u32) -> Task {
        if v & 1 == 1 {
            Task::ThreadBlock { base: v >> 1 }
        } else {
            Task::WarpRow { row: v >> 1 }
        }
    }
}

/// The hybrid preprocessing: block-granularity task selection.
pub fn plan_tasks(l: &LowerTriangularCsr, warp_size: usize, threshold: f64) -> Vec<Task> {
    let n = l.n();
    let row_ptr = l.csr().row_ptr();
    let mut tasks = Vec::new();
    let mut base = 0usize;
    while base < n {
        let hi = (base + warp_size).min(n);
        let block_nnz = (row_ptr[hi] - row_ptr[base]) as f64;
        let avg = block_nnz / (hi - base) as f64;
        if avg < threshold {
            tasks.push(Task::ThreadBlock { base: base as u32 });
        } else {
            for r in base..hi {
                tasks.push(Task::WarpRow { row: r as u32 });
            }
        }
        base = hi;
    }
    tasks
}

/// The hybrid kernel: per-warp dispatch between the two granularities.
pub struct HybridKernel {
    m: DeviceCsr,
    sb: SolveBuffers,
    tasks: BufU32,
    warp_size: u32,
}

impl HybridKernel {
    /// Builds the kernel against an explicit task list — the sharded path
    /// (`crate::shard`), which filters the global plan down to one shard's
    /// rows before uploading.
    pub(crate) fn new(m: DeviceCsr, sb: SolveBuffers, tasks: BufU32, warp_size: usize) -> Self {
        HybridKernel {
            m,
            sb,
            tasks,
            warp_size: warp_size as u32,
        }
    }
}

/// Uploads an explicit task list (sharded path); returns the device buffer.
pub(crate) fn upload_task_list(dev: &mut GpuDevice, tasks: &[Task]) -> BufU32 {
    let encoded: Vec<u32> = tasks.iter().map(|t| t.encode()).collect();
    dev.mem().alloc_u32(&encoded)
}

/// Per-lane registers (union of both halves).
#[derive(Default)]
pub struct HyLane {
    /// Row this lane works on (thread half) or the warp's row (warp half).
    row: u32,
    thread_mode: bool,
    j: u32,
    row_end: u32,
    col: u32,
    add_len: u32,
    sum: f64,
    v: f64,
    bv: f64,
    xi: f64,
    ready: bool,
}

impl WarpKernel for HybridKernel {
    type Lane = HyLane;

    fn name(&self) -> &'static str {
        "hybrid-warp-thread"
    }

    fn shared_per_warp(&self) -> usize {
        self.warp_size as usize
    }

    fn make_lane(&self, _tid: u32) -> HyLane {
        HyLane::default()
    }

    fn exec(&self, pc: Pc, l: &mut HyLane, tid: u32, mem: &mut LaneMem<'_>) -> Effect {
        let warp = (tid / self.warp_size) as usize;
        let lane = tid % self.warp_size;
        match pc {
            P_LD_TASK => {
                let task = Task::decode(mem.load_u32(self.tasks, warp));
                match task {
                    Task::ThreadBlock { base } => {
                        l.thread_mode = true;
                        l.row = base + lane;
                        if (l.row as usize) < self.m.n {
                            Effect::to(T_LD_BEGIN)
                        } else {
                            Effect::exit()
                        }
                    }
                    Task::WarpRow { row } => {
                        l.thread_mode = false;
                        l.row = row;
                        Effect::to(W_LD_BEGIN)
                    }
                }
            }

            // ---- Thread-level half: Writing-First over l.row -------------
            T_LD_BEGIN => {
                l.j = mem.load_u32(self.m.row_ptr, l.row as usize);
                Effect::to(T_LD_END)
            }
            T_LD_END => {
                l.row_end = mem.load_u32(self.m.row_ptr, l.row as usize + 1);
                Effect::to(T_OUTER)
            }
            T_OUTER => {
                if l.j < l.row_end {
                    Effect::to(T_LD_COL)
                } else {
                    Effect::exit()
                }
            }
            T_LD_COL => {
                l.col = mem.load_u32(self.m.col_idx, l.j as usize);
                Effect::to(T_POLL)
            }
            T_POLL => {
                l.ready = mem.poll_flag(self.sb.flags, l.col as usize);
                Effect::to(T_BR_READY)
            }
            T_BR_READY => {
                if l.ready {
                    Effect::to(T_LD_VAL)
                } else {
                    Effect::to(T_BR_DIAG)
                }
            }
            T_LD_VAL => {
                l.v = mem.load_f64(self.m.values, l.j as usize);
                Effect::to(T_LD_X)
            }
            T_LD_X => {
                l.xi = mem.load_f64(self.sb.x, l.col as usize);
                Effect::to(T_FMA)
            }
            T_FMA => {
                l.sum += l.v * l.xi;
                l.j += 1;
                Effect::flops(T_LD_COL2, 2)
            }
            T_LD_COL2 => {
                l.col = mem.load_u32(self.m.col_idx, l.j as usize);
                Effect::to(T_POLL)
            }
            T_BR_DIAG => {
                if l.col == l.row {
                    Effect::to(T_LD_B)
                } else {
                    Effect::to(T_OUTER)
                }
            }
            T_LD_B => {
                l.bv = mem.load_f64(self.sb.b, l.row as usize);
                Effect::to(T_LD_DIAG)
            }
            T_LD_DIAG => {
                l.v = mem.load_f64(self.m.values, l.row_end as usize - 1);
                Effect::to(T_DIV)
            }
            T_DIV => {
                l.xi = (l.bv - l.sum) / l.v;
                Effect::flops(T_ST_X, 2)
            }
            T_ST_X => {
                mem.store_f64(self.sb.x, l.row as usize, l.xi);
                Effect::to(T_FENCE)
            }
            T_FENCE => Effect::fence(T_ST_FLAG),
            T_ST_FLAG => {
                mem.store_flag(self.sb.flags, l.row as usize, true);
                Effect::exit()
            }

            // ---- Warp-level half: SyncFree over the shared l.row ---------
            W_LD_BEGIN => {
                l.j = mem.load_u32(self.m.row_ptr, l.row as usize);
                Effect::to(W_LD_END)
            }
            W_LD_END => {
                l.row_end = mem.load_u32(self.m.row_ptr, l.row as usize + 1);
                l.j += lane;
                l.sum = 0.0;
                Effect::to(W_STRIDE)
            }
            W_STRIDE => {
                if l.j + 1 < l.row_end {
                    Effect::to(W_LD_COL)
                } else {
                    Effect::to(W_SH_STORE)
                }
            }
            W_LD_COL => {
                l.col = mem.load_u32(self.m.col_idx, l.j as usize);
                Effect::to(W_POLL)
            }
            W_POLL => {
                l.ready = mem.poll_flag(self.sb.flags, l.col as usize);
                Effect::to(W_BR_READY)
            }
            W_BR_READY => {
                if l.ready {
                    Effect::to(W_LD_VAL)
                } else {
                    Effect::to(W_POLL)
                }
            }
            W_LD_VAL => {
                l.v = mem.load_f64(self.m.values, l.j as usize);
                Effect::to(W_LD_X)
            }
            W_LD_X => {
                l.bv = mem.load_f64(self.sb.x, l.col as usize);
                Effect::to(W_FMA)
            }
            W_FMA => {
                l.sum += l.v * l.bv;
                l.j += self.warp_size;
                Effect::flops(W_STRIDE, 2)
            }
            W_SH_STORE => {
                mem.shared_store(lane as usize, l.sum);
                l.add_len = self.warp_size.next_power_of_two() / 2;
                Effect::to(W_RED_CHECK)
            }
            W_RED_CHECK => {
                if l.add_len > 0 {
                    Effect::to(W_RED_LOAD)
                } else {
                    Effect::to(W_BR_LANE0)
                }
            }
            W_RED_LOAD => {
                if lane < l.add_len && lane + l.add_len < self.warp_size {
                    l.v = mem.shared_load((lane + l.add_len) as usize);
                    l.sum += l.v;
                    Effect::flops(W_RED_STORE, 1)
                } else {
                    Effect::to(W_RED_STORE)
                }
            }
            W_RED_STORE => {
                if lane < l.add_len {
                    mem.shared_store(lane as usize, l.sum);
                }
                l.add_len /= 2;
                Effect::to(W_RED_CHECK)
            }
            W_BR_LANE0 => {
                if lane == 0 {
                    Effect::to(W_LD_B)
                } else {
                    Effect::exit()
                }
            }
            W_LD_B => {
                l.bv = mem.load_f64(self.sb.b, l.row as usize);
                Effect::to(W_LD_DIAG)
            }
            W_LD_DIAG => {
                l.v = mem.load_f64(self.m.values, l.row_end as usize - 1);
                Effect::to(W_DIV)
            }
            W_DIV => {
                l.sum = (l.bv - l.sum) / l.v;
                Effect::flops(W_ST_X, 2)
            }
            W_ST_X => {
                mem.store_f64(self.sb.x, l.row as usize, l.sum);
                Effect::to(W_FENCE)
            }
            W_FENCE => Effect::fence(W_ST_FLAG),
            W_ST_FLAG => {
                mem.store_flag(self.sb.flags, l.row as usize, true);
                Effect::exit()
            }
            _ => unreachable!("hybrid has no pc {pc}"),
        }
    }

    fn reconv(&self, pc: Pc) -> Pc {
        match pc {
            // The mode dispatch never diverges (one task per warp), except
            // for the tail thread-block where overflow lanes exit.
            P_LD_TASK => PC_EXIT,
            T_OUTER | T_BR_DIAG => PC_EXIT,
            T_BR_READY => T_BR_DIAG,
            W_STRIDE => W_SH_STORE,
            W_BR_READY => W_LD_VAL,
            W_RED_CHECK => W_BR_LANE0,
            W_BR_LANE0 => PC_EXIT,
            _ => unreachable!("pc {pc} cannot diverge"),
        }
    }

    fn branch_order(&self, pc: Pc, target: Pc) -> u8 {
        match pc {
            T_BR_READY => {
                if target == T_LD_VAL {
                    0
                } else {
                    1
                }
            }
            T_BR_DIAG => {
                if target == T_LD_B {
                    0
                } else {
                    1
                }
            }
            W_BR_READY => {
                if target == W_POLL {
                    0
                } else {
                    1
                }
            }
            W_BR_LANE0 => {
                if target == W_LD_B {
                    0
                } else {
                    1
                }
            }
            _ => {
                if target == PC_EXIT {
                    1
                } else {
                    0
                }
            }
        }
    }

    fn pc_name(&self, pc: Pc) -> &'static str {
        match pc {
            P_LD_TASK => "ld task[warp]",
            T_LD_BEGIN..=T_ST_FLAG => "thread-level",
            W_LD_BEGIN..=W_ST_FLAG => "warp-level",
            _ => "?",
        }
    }

    /// Busy-wait purity (spin fast-forwarding): both sub-kernel poll cycles re-read the same words each trip.
    fn spin_pure(&self, pc: Pc) -> bool {
        pc == T_POLL || pc == W_POLL
    }
}

/// Plans the task list on the host and uploads the encoded tasks, returning
/// the device buffer and the task count (= grid warps). The session layer
/// calls this once and replays the plan across solves.
pub fn upload_tasks(
    dev: &mut GpuDevice,
    l: &LowerTriangularCsr,
    threshold: f64,
) -> (BufU32, usize) {
    let ws = dev.config().warp_size;
    let tasks = plan_tasks(l, ws, threshold);
    let encoded: Vec<u32> = tasks.iter().map(|t| t.encode()).collect();
    let n_tasks = encoded.len();
    (dev.mem().alloc_u32(&encoded), n_tasks)
}

/// Runs the hybrid solver with the given threshold.
pub fn launch_with_threshold(
    dev: &mut GpuDevice,
    m: DeviceCsr,
    sb: SolveBuffers,
    l: &LowerTriangularCsr,
    threshold: f64,
) -> Result<LaunchStats, SimtError> {
    let (tasks, n_tasks) = upload_tasks(dev, l, threshold);
    launch_with_tasks(dev, m, sb, tasks, n_tasks)
}

/// Runs the hybrid kernel against an already-uploaded task plan — the
/// session path, which plans once and reuses the encoded tasks across
/// solves. `n_tasks` is the task count (= grid warps).
pub fn launch_with_tasks(
    dev: &mut GpuDevice,
    m: DeviceCsr,
    sb: SolveBuffers,
    tasks: BufU32,
    n_tasks: usize,
) -> Result<LaunchStats, SimtError> {
    let ws = dev.config().warp_size;
    dev.launch(
        &HybridKernel {
            m,
            sb,
            tasks,
            warp_size: ws as u32,
        },
        n_tasks,
    )
}

/// Convenience: upload, solve with the default threshold, read back.
pub fn solve(
    dev: &mut GpuDevice,
    l: &LowerTriangularCsr,
    b: &[f64],
) -> Result<SimSolve, SimtError> {
    solve_with_threshold(dev, l, b, DEFAULT_THRESHOLD)
}

/// Convenience with an explicit threshold (for the ablation sweep).
pub fn solve_with_threshold(
    dev: &mut GpuDevice,
    l: &LowerTriangularCsr,
    b: &[f64],
    threshold: f64,
) -> Result<SimSolve, SimtError> {
    run_on_fresh_device(dev, l, b, |dev, m, sb| {
        launch_with_threshold(dev, m, sb, l, threshold)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::{check_against_reference, problem, test_devices, test_matrices};
    use capellini_simt::{DeviceConfig, GpuDevice};

    #[test]
    fn task_encoding_round_trips() {
        for t in [
            Task::ThreadBlock { base: 0 },
            Task::ThreadBlock { base: 96 },
            Task::WarpRow { row: 0 },
            Task::WarpRow { row: 12345 },
        ] {
            assert_eq!(Task::decode(t.encode()), t);
        }
    }

    #[test]
    fn plan_splits_by_density() {
        // First 64 rows sparse (chain), next 64 dense (band 40).
        use capellini_sparse::{CooMatrix, CsrMatrix, LowerTriangularCsr};
        let n = 128;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            if i < 64 {
                if i > 0 {
                    coo.push(i as u32, i as u32 - 1, 0.5);
                }
            } else {
                for d in 1..=40usize.min(i) {
                    coo.push(i as u32, (i - d) as u32, 0.01);
                }
            }
            coo.push(i as u32, i as u32, 1.0);
        }
        let l = LowerTriangularCsr::try_new(CsrMatrix::from_coo(&coo)).unwrap();
        let tasks = plan_tasks(&l, 32, 16.0);
        // Two sparse blocks → 2 thread tasks; two dense blocks → 64 warp tasks.
        let threads = tasks
            .iter()
            .filter(|t| matches!(t, Task::ThreadBlock { .. }))
            .count();
        let warps = tasks
            .iter()
            .filter(|t| matches!(t, Task::WarpRow { .. }))
            .count();
        assert_eq!(threads, 2);
        assert_eq!(warps, 64);
    }

    #[test]
    fn solves_all_test_matrices_on_all_devices() {
        for cfg in test_devices() {
            for (name, l) in test_matrices() {
                let (_, b) = problem(&l);
                let mut dev = GpuDevice::new(cfg.clone());
                let out = solve(&mut dev, &l, &b)
                    .unwrap_or_else(|e| panic!("{name} on {}: {e}", cfg.name));
                check_against_reference(&l, &b, &out.x);
            }
        }
    }

    #[test]
    fn extreme_thresholds_degenerate_to_pure_algorithms() {
        let l = capellini_sparse::gen::random_k(300, 3, 300, 4);
        let (_, b) = problem(&l);
        // threshold = ∞ → all thread-level blocks.
        let mut d = GpuDevice::new(DeviceConfig::pascal_like());
        let all_thread = solve_with_threshold(&mut d, &l, &b, f64::INFINITY).unwrap();
        check_against_reference(&l, &b, &all_thread.x);
        assert_eq!(all_thread.stats.warps_launched, 300u64.div_ceil(32));
        // threshold = 0 → all warp-level rows.
        let mut d = GpuDevice::new(DeviceConfig::pascal_like());
        let all_warp = solve_with_threshold(&mut d, &l, &b, 0.0).unwrap();
        check_against_reference(&l, &b, &all_warp.x);
        assert_eq!(all_warp.stats.warps_launched, 300);
    }

    #[test]
    fn mixed_matrix_interoperates_across_granularities() {
        // Sparse and dense stripes alternate; correctness requires the two
        // task kinds to honour each other's flags.
        use capellini_sparse::{CooMatrix, CsrMatrix, LowerTriangularCsr};
        let n = 256;
        let mut coo = CooMatrix::new(n, n);
        for i in 1..n {
            let stripe_dense = (i / 32) % 2 == 1;
            if stripe_dense {
                for d in 1..=24usize.min(i) {
                    coo.push(i as u32, (i - d) as u32, 0.02);
                }
            } else {
                coo.push(i as u32, (i / 2) as u32, 0.5);
            }
        }
        for i in 0..n {
            coo.push(i as u32, i as u32, 1.0);
        }
        let l = LowerTriangularCsr::try_new(CsrMatrix::from_coo(&coo)).unwrap();
        let (_, b) = problem(&l);
        let mut dev = GpuDevice::new(DeviceConfig::pascal_like());
        let out = solve(&mut dev, &l, &b).unwrap();
        check_against_reference(&l, &b, &out.x);
    }
}
