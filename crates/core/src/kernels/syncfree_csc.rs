//! The *original* CSC-formulated synchronization-free SpTRSV of Liu et
//! al. [20] (EuroPar'16), as opposed to Algorithm 3's row/CSR presentation:
//! one warp per **column**, scatter-style.
//!
//! For a lower-triangular CSC matrix (diagonal first in each column):
//!
//! 1. preprocessing computes each row's *in-degree* (its off-diagonal
//!    nonzero count) — this, plus the CSC conversion itself, is the
//!    algorithm's preprocessing charge;
//! 2. warp `j` busy-waits until `in_degree[j]` reaches zero, meaning every
//!    update `l_{j,k}·x_k (k<j)` has been folded into `left_sum[j]`;
//! 3. lane 0 computes `x_j = (b_j − left_sum[j]) / l_{j,j}` and publishes;
//! 4. the warp's lanes stride over the column's off-diagonal entries and
//!    scatter `atomicAdd(left_sum[r], −l_{r,j}·x_j)`,
//!    `atomicSub(in_degree[r], 1)` — which is what eventually releases the
//!    dependent warps.
//!
//! The busy-wait is on the warp's own counter (never another lane of the
//! same warp), so the design is deadlock-free by construction — and, like
//! Algorithm 3, it is *warp-level*: on high-granularity matrices it wastes
//! lanes exactly the same way.

use capellini_simt::{
    BufF64, BufU32, Effect, GpuDevice, LaneMem, LaunchStats, Pc, SimtError, WarpKernel, PC_EXIT,
};
use capellini_sparse::{CscMatrix, LowerTriangularCsr};

use crate::kernels::SimSolve;

const P_LD_COLBEGIN: Pc = 0;
const P_LD_COLEND: Pc = 1;
const P_POLL_INDEG: Pc = 2;
const P_BR_READY: Pc = 3;
const P_LD_B: Pc = 4;
const P_LD_DIAG: Pc = 5;
const P_DIV: Pc = 6;
const P_ST_X: Pc = 7;
const P_FENCE: Pc = 8;
const P_BCAST: Pc = 9;
const P_SCATTER_CHECK: Pc = 10;
const P_LD_ROW: Pc = 11;
const P_LD_VAL: Pc = 12;
const P_ATOMIC_SUM: Pc = 13;
const P_ATOMIC_DEG: Pc = 14;

/// Device-resident CSC matrix plus the scatter state.
pub struct SyncFreeCscKernel {
    n: usize,
    col_ptr: BufU32,
    row_idx: BufU32,
    values: BufF64,
    b: BufF64,
    x: BufF64,
    /// Running right-hand-side corrections (`left_sum`).
    left_sum: BufF64,
    /// Remaining unresolved dependencies per row.
    in_degree: BufU32,
    warp_size: u32,
}

impl SyncFreeCscKernel {
    /// Builds the kernel from pre-uploaded state — the sharded path
    /// (`crate::shard`), which restricts the column range via a wrapper and
    /// forwards boundary scatter deltas over the inter-device link.
    pub(crate) fn new(dc: DeviceCsc, b: BufF64, x: BufF64, warp_size: usize) -> Self {
        SyncFreeCscKernel {
            n: dc.n,
            col_ptr: dc.col_ptr,
            row_idx: dc.row_idx,
            values: dc.values,
            b,
            x,
            left_sum: dc.left_sum,
            in_degree: dc.in_degree,
            warp_size: warp_size as u32,
        }
    }
}

/// Per-lane registers.
#[derive(Default)]
pub struct ScLane {
    j: u32,
    col_begin: u32,
    col_end: u32,
    row: u32,
    xj: f64,
    v: f64,
    ready: bool,
}

impl WarpKernel for SyncFreeCscKernel {
    type Lane = ScLane;

    fn name(&self) -> &'static str {
        "syncfree-csc"
    }

    fn shared_per_warp(&self) -> usize {
        1 // broadcast slot for x_j
    }

    fn make_lane(&self, _tid: u32) -> ScLane {
        ScLane::default()
    }

    fn exec(&self, pc: Pc, l: &mut ScLane, tid: u32, mem: &mut LaneMem<'_>) -> Effect {
        let col = (tid / self.warp_size) as usize;
        let lane = tid % self.warp_size;
        match pc {
            P_LD_COLBEGIN => {
                if col >= self.n {
                    return Effect::exit();
                }
                l.col_begin = mem.load_u32(self.col_ptr, col);
                Effect::to(P_LD_COLEND)
            }
            P_LD_COLEND => {
                l.col_end = mem.load_u32(self.col_ptr, col + 1);
                Effect::to(P_POLL_INDEG)
            }
            P_POLL_INDEG => {
                // Volatile re-read of the warp's own countdown.
                l.ready = mem.poll_zero_u32(self.in_degree, col);
                Effect::to(P_BR_READY)
            }
            P_BR_READY => {
                if l.ready {
                    Effect::to(if lane == 0 { P_LD_B } else { P_BCAST })
                } else {
                    Effect::to(P_POLL_INDEG)
                }
            }
            P_LD_B => {
                l.xj = mem.load_f64(self.b, col);
                Effect::to(P_LD_DIAG)
            }
            P_LD_DIAG => {
                // left_sum[col] is final once in_degree hit zero.
                l.v = mem.load_f64(self.left_sum, col);
                Effect::to(P_DIV)
            }
            P_DIV => {
                // The diagonal is the first entry of a lower-triangular CSC
                // column; divide and keep x_j in a register.
                let dv = mem.load_f64(self.values, l.col_begin as usize);
                l.xj = (l.xj - l.v) / dv;
                Effect::flops(P_ST_X, 2)
            }
            P_ST_X => {
                mem.store_f64(self.x, col, l.xj);
                Effect::to(P_FENCE)
            }
            P_FENCE => Effect::fence(P_BCAST),
            P_BCAST => {
                // Lane 0 broadcasts x_j through shared memory; the barrier
                // here is the lock-step itself (all lanes reconverged).
                if lane == 0 {
                    mem.shared_store(0, l.xj);
                } else {
                    l.xj = mem.shared_load(0);
                }
                l.j = l.col_begin + 1 + lane; // skip the diagonal
                Effect::to(P_SCATTER_CHECK)
            }
            P_SCATTER_CHECK => {
                if l.j < l.col_end {
                    Effect::to(P_LD_ROW)
                } else {
                    Effect::exit()
                }
            }
            P_LD_ROW => {
                l.row = mem.load_u32(self.row_idx, l.j as usize);
                Effect::to(P_LD_VAL)
            }
            P_LD_VAL => {
                l.v = mem.load_f64(self.values, l.j as usize);
                Effect::to(P_ATOMIC_SUM)
            }
            P_ATOMIC_SUM => {
                mem.atomic_add_f64(self.left_sum, l.row as usize, l.v * l.xj);
                Effect::flops(P_ATOMIC_DEG, 2)
            }
            P_ATOMIC_DEG => {
                mem.atomic_sub_u32(self.in_degree, l.row as usize, 1);
                l.j += self.warp_size;
                Effect::to(P_SCATTER_CHECK)
            }
            _ => unreachable!("syncfree-csc has no pc {pc}"),
        }
    }

    fn reconv(&self, pc: Pc) -> Pc {
        match pc {
            P_LD_COLBEGIN => PC_EXIT,
            // The ready branch splits lane 0 (solve path) from the rest
            // (waiting at the broadcast); they reconverge at the broadcast.
            P_BR_READY => P_BCAST,
            P_SCATTER_CHECK => PC_EXIT,
            _ => unreachable!("pc {pc} cannot diverge"),
        }
    }

    fn branch_order(&self, pc: Pc, target: Pc) -> u8 {
        match pc {
            P_BR_READY => match target {
                // Spin side first (compiled fall-through), then the solve
                // path; parked lanes wait at the broadcast.
                P_POLL_INDEG => 0,
                P_LD_B => 1,
                _ => 2,
            },
            _ => {
                if target == PC_EXIT {
                    1
                } else {
                    0
                }
            }
        }
    }

    fn pc_name(&self, pc: Pc) -> &'static str {
        match pc {
            P_LD_COLBEGIN => "ld colPtr[j]",
            P_LD_COLEND => "ld colPtr[j+1]",
            P_POLL_INDEG => "poll in_degree[j]",
            P_BR_READY => "ready?",
            P_LD_B => "ld b[j]",
            P_LD_DIAG => "ld left_sum[j]",
            P_DIV => "ld diag + div",
            P_ST_X => "st x[j]",
            P_FENCE => "threadfence",
            P_BCAST => "broadcast x_j",
            P_SCATTER_CHECK => "scatter loop?",
            P_LD_ROW => "ld rowIdx",
            P_LD_VAL => "ld val",
            P_ATOMIC_SUM => "atomicAdd left_sum",
            P_ATOMIC_DEG => "atomicSub in_degree",
            _ => "?",
        }
    }

    /// Busy-wait purity (spin fast-forwarding): the in-degree poll loop is a bare poll/branch cycle.
    fn spin_pure(&self, pc: Pc) -> bool {
        pc == P_POLL_INDEG
    }
}

/// Host preprocessing: CSC conversion (done by the caller) plus in-degree
/// computation from the CSC structure.
pub fn in_degrees(csc: &CscMatrix) -> Vec<u32> {
    let n = csc.n_cols();
    let mut deg = vec![0u32; n];
    for j in 0..n {
        let (rows, _) = csc.col(j);
        for &r in rows.iter().skip(1) {
            deg[r as usize] += 1;
        }
    }
    deg
}

/// The device-resident CSC structure plus the *consumable* scatter state
/// (`left_sum`, `in_degree`). A session uploads this once and re-arms the
/// consumable arrays between solves via [`rearm`].
#[derive(Debug, Clone, Copy)]
pub struct DeviceCsc {
    /// Matrix dimension.
    pub n: usize,
    /// `cscColPtr` (n+1 entries).
    pub col_ptr: BufU32,
    /// `cscRowIdx` (nnz entries).
    pub row_idx: BufU32,
    /// `cscVal` (nnz entries).
    pub values: BufF64,
    /// Running right-hand-side corrections (consumed by each solve).
    pub left_sum: BufF64,
    /// Remaining unresolved dependencies per row (consumed by each solve).
    pub in_degree: BufU32,
}

/// Uploads the CSC arrays and the initial in-degree state.
pub fn upload_csc(dev: &mut GpuDevice, csc: &CscMatrix, deg: &[u32]) -> DeviceCsc {
    let n = csc.n_cols();
    let mem = dev.mem();
    DeviceCsc {
        n,
        col_ptr: mem.alloc_u32(csc.col_ptr()),
        row_idx: mem.alloc_u32(csc.row_idx()),
        values: mem.alloc_f64(csc.values()),
        left_sum: mem.alloc_f64_zeroed(n),
        in_degree: mem.alloc_u32(deg),
    }
}

/// Re-arms the consumable scatter state for another solve: the in-degree
/// countdown is rewound to `deg` and `left_sum` is zeroed. Without this, a
/// second launch would observe the drained counters of the first.
pub fn rearm(dev: &mut GpuDevice, dc: DeviceCsc, deg: &[u32]) {
    let mem = dev.mem();
    mem.write_u32(dc.in_degree, deg);
    mem.fill_f64(dc.left_sum, 0.0);
}

/// Launches the column-scatter kernel on pre-uploaded (and armed) state.
pub fn launch_uploaded(
    dev: &mut GpuDevice,
    dc: DeviceCsc,
    b: BufF64,
    x: BufF64,
) -> Result<LaunchStats, SimtError> {
    let ws = dev.config().warp_size;
    let kernel = SyncFreeCscKernel {
        n: dc.n,
        col_ptr: dc.col_ptr,
        row_idx: dc.row_idx,
        values: dc.values,
        b,
        x,
        left_sum: dc.left_sum,
        in_degree: dc.in_degree,
        warp_size: ws as u32,
    };
    dev.launch(&kernel, dc.n)
}

/// Uploads the CSC system and runs the column-scatter SyncFree solver.
pub fn solve(
    dev: &mut GpuDevice,
    l: &LowerTriangularCsr,
    b: &[f64],
) -> Result<SimSolve, SimtError> {
    assert_eq!(b.len(), l.n(), "rhs length must equal matrix dimension");
    let csc = l.csr().to_csc();
    let deg = in_degrees(&csc);
    let n = l.n();
    let dc = upload_csc(dev, &csc, &deg);
    let mem = dev.mem();
    let b = mem.alloc_f64(b);
    let x = mem.alloc_f64_zeroed(n);
    let stats = launch_uploaded(dev, dc, b, x)?;
    Ok(SimSolve {
        x: dev.mem_ref().read_f64(x).to_vec(),
        stats,
    })
}

/// The launch statistics plus solution, as a `LaunchStats` convenience.
pub fn launch_stats_only(
    dev: &mut GpuDevice,
    l: &LowerTriangularCsr,
    b: &[f64],
) -> Result<LaunchStats, SimtError> {
    solve(dev, l, b).map(|s| s.stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::{check_against_reference, problem, test_devices, test_matrices};
    use capellini_simt::{DeviceConfig, GpuDevice};

    #[test]
    fn in_degree_counts_off_diagonal_row_entries() {
        let l = capellini_sparse::paper_example();
        let deg = in_degrees(&l.csr().to_csc());
        // Row i's in-degree = its strictly-lower nonzero count.
        let expect: Vec<u32> = (0..l.n()).map(|i| l.row_deps(i).len() as u32).collect();
        assert_eq!(deg, expect);
    }

    #[test]
    fn solves_all_test_matrices_on_all_devices() {
        for cfg in test_devices() {
            for (name, l) in test_matrices() {
                let (_, b) = problem(&l);
                let mut dev = GpuDevice::new(cfg.clone());
                let out = solve(&mut dev, &l, &b)
                    .unwrap_or_else(|e| panic!("{name} on {}: {e}", cfg.name));
                check_against_reference(&l, &b, &out.x);
            }
        }
    }

    #[test]
    fn scatter_uses_atomics() {
        let l = capellini_sparse::gen::random_k(500, 3, 500, 61);
        let (_, b) = problem(&l);
        let mut dev = GpuDevice::new(DeviceConfig::pascal_like());
        let out = solve(&mut dev, &l, &b).unwrap();
        // Two atomics per off-diagonal nonzero (sum + degree), coalescing
        // may merge some within a warp.
        assert!(out.stats.atomic_ops > 0);
        check_against_reference(&l, &b, &out.x);
    }

    #[test]
    fn agrees_with_the_row_formulation() {
        let l = capellini_sparse::gen::powerlaw(2_000, 3.0, 62);
        let (_, b) = problem(&l);
        let mut d1 = GpuDevice::new(DeviceConfig::pascal_like());
        let csc = solve(&mut d1, &l, &b).unwrap();
        let mut d2 = GpuDevice::new(DeviceConfig::pascal_like());
        let csr = crate::kernels::syncfree::solve(&mut d2, &l, &b).unwrap();
        capellini_sparse::linalg::assert_solutions_close(&csc.x, &csr.x, 1e-10);
    }
}
