//! Algorithm 2: the classic **Level-Set SpTRSV** (Anderson & Saad [1],
//! Saltz [35]). Preprocessing partitions components into level-sets; each
//! level is solved by one kernel launch with a thread per component, and the
//! inter-level synchronization is the launch boundary itself — which is why
//! the algorithm pays one launch overhead per level (the synchronization
//! cost the sync-free family eliminates).

use capellini_simt::{
    BufU32, Effect, GpuDevice, LaneMem, LaunchStats, Pc, SimtError, WarpKernel, PC_EXIT,
};
use capellini_sparse::{LevelSets, LowerTriangularCsr};

use crate::buffers::{DeviceCsr, SolveBuffers};
use crate::kernels::SimSolve;

const P_LD_ORDER: Pc = 0;
const P_LD_BEGIN: Pc = 1;
const P_LD_END: Pc = 2;
const P_LOOP: Pc = 3;
const P_LD_COL: Pc = 4;
const P_LD_VAL: Pc = 5;
const P_LD_X: Pc = 6;
const P_LD_B: Pc = 7;
const P_LD_DIAG: Pc = 8;
const P_DIV: Pc = 9;
const P_ST_X: Pc = 10;

/// Kernel solving the components of one level (all dependencies ready).
pub struct LevelSolveKernel {
    m: DeviceCsr,
    b: capellini_simt::BufF64,
    x: capellini_simt::BufF64,
    order: BufU32,
    /// Offset of this level inside `order`.
    level_lo: usize,
    /// Components in this level.
    count: usize,
}

impl LevelSolveKernel {
    /// Builds one level's kernel — the sharded path (`crate::shard`), which
    /// drives the per-level launch loop itself over a filtered order array.
    pub(crate) fn new(
        m: DeviceCsr,
        b: capellini_simt::BufF64,
        x: capellini_simt::BufF64,
        order: BufU32,
        level_lo: usize,
        count: usize,
    ) -> Self {
        LevelSolveKernel {
            m,
            b,
            x,
            order,
            level_lo,
            count,
        }
    }
}

/// Per-lane registers.
#[derive(Default)]
pub struct LvLane {
    id: u32,
    j: u32,
    row_end: u32,
    col: u32,
    left_sum: f64,
    v: f64,
    bv: f64,
}

impl WarpKernel for LevelSolveKernel {
    type Lane = LvLane;

    fn name(&self) -> &'static str {
        "levelset-level"
    }

    fn make_lane(&self, _tid: u32) -> LvLane {
        LvLane::default()
    }

    fn exec(&self, pc: Pc, l: &mut LvLane, tid: u32, mem: &mut LaneMem<'_>) -> Effect {
        match pc {
            P_LD_ORDER => {
                if tid as usize >= self.count {
                    return Effect::exit();
                }
                l.id = mem.load_u32(self.order, self.level_lo + tid as usize);
                Effect::to(P_LD_BEGIN)
            }
            P_LD_BEGIN => {
                l.j = mem.load_u32(self.m.row_ptr, l.id as usize);
                Effect::to(P_LD_END)
            }
            P_LD_END => {
                l.row_end = mem.load_u32(self.m.row_ptr, l.id as usize + 1);
                Effect::to(P_LOOP)
            }
            P_LOOP => {
                if l.j + 1 < l.row_end {
                    Effect::to(P_LD_COL)
                } else {
                    Effect::to(P_LD_B)
                }
            }
            P_LD_COL => {
                l.col = mem.load_u32(self.m.col_idx, l.j as usize);
                Effect::to(P_LD_VAL)
            }
            P_LD_VAL => {
                l.v = mem.load_f64(self.m.values, l.j as usize);
                Effect::to(P_LD_X)
            }
            P_LD_X => {
                // No flag, no spin: the level schedule guarantees readiness.
                let xv = mem.load_f64(self.x, l.col as usize);
                l.left_sum += l.v * xv;
                l.j += 1;
                Effect::flops(P_LOOP, 2)
            }
            P_LD_B => {
                l.bv = mem.load_f64(self.b, l.id as usize);
                Effect::to(P_LD_DIAG)
            }
            P_LD_DIAG => {
                l.v = mem.load_f64(self.m.values, l.row_end as usize - 1);
                Effect::to(P_DIV)
            }
            P_DIV => {
                l.bv = (l.bv - l.left_sum) / l.v;
                Effect::flops(P_ST_X, 2)
            }
            P_ST_X => {
                mem.store_f64(self.x, l.id as usize, l.bv);
                Effect::exit()
            }
            _ => unreachable!("level kernel has no pc {pc}"),
        }
    }

    fn reconv(&self, pc: Pc) -> Pc {
        match pc {
            P_LD_ORDER => PC_EXIT,
            P_LOOP => P_LD_B,
            _ => unreachable!("pc {pc} cannot diverge"),
        }
    }

    fn pc_name(&self, pc: Pc) -> &'static str {
        match pc {
            P_LD_ORDER => "ld order[k]",
            P_LD_BEGIN => "ld rowPtr[id]",
            P_LD_END => "ld rowPtr[id+1]",
            P_LOOP => "for j<diag",
            P_LD_COL => "ld colIdx[j]",
            P_LD_VAL => "ld val[j]",
            P_LD_X => "ld x[col] + fma",
            P_LD_B => "ld b[id]",
            P_LD_DIAG => "ld diag",
            P_DIV => "div",
            P_ST_X => "st x[id]",
            _ => "?",
        }
    }
}

/// Runs Level-Set SpTRSV: one launch per level over a precomputed analysis.
/// Returns the accumulated statistics of all launches.
pub fn launch_with_levels(
    dev: &mut GpuDevice,
    m: DeviceCsr,
    sb: SolveBuffers,
    levels: &LevelSets,
) -> Result<LaunchStats, SimtError> {
    let order = dev.mem().alloc_u32(levels.order());
    launch_with_uploaded_levels(dev, m, sb, levels, order)
}

/// Runs Level-Set SpTRSV against an `order` array already resident on the
/// device — the session path, which uploads the analysis once and reuses it
/// across solves.
pub fn launch_with_uploaded_levels(
    dev: &mut GpuDevice,
    m: DeviceCsr,
    sb: SolveBuffers,
    levels: &LevelSets,
    order: BufU32,
) -> Result<LaunchStats, SimtError> {
    let ws = dev.config().warp_size;
    let mut total = LaunchStats::default();
    for lvl in 0..levels.n_levels() {
        let lo = levels.level_ptr()[lvl] as usize;
        let hi = levels.level_ptr()[lvl + 1] as usize;
        let count = hi - lo;
        if count == 0 {
            continue;
        }
        let kernel = LevelSolveKernel {
            m,
            b: sb.b,
            x: sb.x,
            order,
            level_lo: lo,
            count,
        };
        let stats = dev.launch(&kernel, count.div_ceil(ws))?;
        total.accumulate(&stats);
    }
    Ok(total)
}

/// Convenience: analyze levels on the host, upload, solve, read back.
pub fn solve(
    dev: &mut GpuDevice,
    l: &LowerTriangularCsr,
    b: &[f64],
) -> Result<SimSolve, SimtError> {
    let levels = LevelSets::analyze(l);
    let dm = DeviceCsr::upload(dev, l);
    let sb = SolveBuffers::upload(dev, b);
    let stats = launch_with_levels(dev, dm, sb, &levels)?;
    Ok(SimSolve {
        x: sb.read_x(dev),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::{check_against_reference, problem, test_devices, test_matrices};
    use capellini_simt::{DeviceConfig, GpuDevice};

    #[test]
    fn solves_all_test_matrices_on_all_devices() {
        for cfg in test_devices() {
            for (name, l) in test_matrices() {
                let (_, b) = problem(&l);
                let mut dev = GpuDevice::new(cfg.clone());
                let out = solve(&mut dev, &l, &b)
                    .unwrap_or_else(|e| panic!("{name} on {}: {e}", cfg.name));
                check_against_reference(&l, &b, &out.x);
            }
        }
    }

    #[test]
    fn one_launch_per_level() {
        let l = capellini_sparse::gen::chain(50, 1, 2); // 50 levels
        let (_, b) = problem(&l);
        let mut dev = GpuDevice::new(DeviceConfig::pascal_like());
        let out = solve(&mut dev, &l, &b).unwrap();
        assert_eq!(out.stats.launches, 50);
        // Launch overhead accumulates per level: the synchronization cost.
        assert!(out.stats.cycles >= 50 * DeviceConfig::pascal_like().launch_overhead_cycles);
    }

    #[test]
    fn wide_single_level_is_one_launch() {
        let l = capellini_sparse::gen::diagonal(512);
        let (_, b) = problem(&l);
        let mut dev = GpuDevice::new(DeviceConfig::pascal_like());
        let out = solve(&mut dev, &l, &b).unwrap();
        assert_eq!(out.stats.launches, 1);
        check_against_reference(&l, &b, &out.x);
    }
}
