//! The SpTRSV kernels, one module per algorithm:
//!
//! | module | paper | granularity | storage |
//! |---|---|---|---|
//! | [`levelset`] | Algorithm 2 (Anderson & Saad / Saltz) | thread, per-level launches | CSR + level analysis |
//! | [`syncfree`] | Algorithm 3 (Liu et al. [20]) | one **warp** per component | CSR arrays (CSC conversion charged as preprocessing) |
//! | [`syncfree_csc`] | Liu et al.'s original CSC scatter formulation | one warp per **column**, atomics | CSC + in-degree analysis |
//! | [`naive`] | §3.3 straw man | one thread per component, bare busy-wait | CSR |
//! | [`two_phase`] | Algorithm 4 — Two-Phase CapelliniSpTRSV | one **thread** per component | CSR |
//! | [`writing_first`] | Algorithm 5 — Writing-First CapelliniSpTRSV | one **thread** per component | CSR |
//! | [`writing_first_multi`] | the multiple-right-hand-sides extension (Liu et al. [21]) | thread, k accumulators | CSR |
//! | [`cusparse_like`] | cuSPARSE black-box stand-in (§2.4) | warp | CSR + analysis |
//! | [`cusparse_like_multi`] | its `csrsm2` (SpTRSM) analogue | warp, k accumulators | CSR + analysis |
//! | [`syncfree_multi`] | SyncFree over k right-hand sides (Liu et al. [21]) | warp, k accumulators | CSR |
//! | [`hybrid`] | §4.4 warp/thread fusion (future work) | mixed | CSR + row-block analysis |
//! | [`scheduled`] | level-coarsened work units (arXiv 2503.05408) | one warp per unit, per-unit flags | CSR + coarsened schedule |
//!
//! The three `*_multi` modules batch `k` right-hand sides per launch for
//! the evaluation trio; per column their floating-point schedule matches
//! the single-RHS kernel exactly, so batched solves are bit-identical to
//! looped ones (pinned by `tests/batched.rs`).

pub mod cusparse_like;
pub mod cusparse_like_multi;
pub mod hybrid;
pub mod levelset;
pub mod naive;
pub mod scheduled;
pub mod syncfree;
pub mod syncfree_csc;
pub mod syncfree_multi;
pub mod two_phase;
pub mod writing_first;
pub mod writing_first_multi;

use capellini_simt::{GpuDevice, LaunchStats, SimtError};
use capellini_sparse::LowerTriangularCsr;

use crate::buffers::{DeviceCsr, SolveBuffers};

/// Result of a simulated solve: the solution plus the launch counters.
#[derive(Debug, Clone)]
pub struct SimSolve {
    /// Solution vector read back from the device.
    pub x: Vec<f64>,
    /// Accumulated launch statistics (one launch for the sync-free family,
    /// one per level for Level-Set).
    pub stats: LaunchStats,
}

/// Uploads matrix and right-hand side, runs `solve`, reads back `x`.
pub(crate) fn run_on_fresh_device(
    dev: &mut GpuDevice,
    l: &LowerTriangularCsr,
    b: &[f64],
    solve: impl FnOnce(&mut GpuDevice, DeviceCsr, SolveBuffers) -> Result<LaunchStats, SimtError>,
) -> Result<SimSolve, SimtError> {
    assert_eq!(b.len(), l.n(), "rhs length must equal matrix dimension");
    let dm = DeviceCsr::upload(dev, l);
    let sb = SolveBuffers::upload(dev, b);
    let stats = solve(dev, dm, sb)?;
    Ok(SimSolve {
        x: sb.read_x(dev),
        stats,
    })
}

#[cfg(test)]
pub(crate) mod testutil {
    use capellini_simt::DeviceConfig;
    use capellini_sparse::linalg::{assert_solutions_close, rhs_for_solution};
    use capellini_sparse::LowerTriangularCsr;

    use crate::reference::solve_serial_csr;

    /// A deterministic non-trivial right-hand side with known solution.
    pub fn problem(l: &LowerTriangularCsr) -> (Vec<f64>, Vec<f64>) {
        let n = l.n();
        let x_true: Vec<f64> = (0..n).map(|i| ((i * 37 + 11) % 23) as f64 - 11.0).collect();
        let b = rhs_for_solution(l, &x_true);
        (x_true, b)
    }

    /// Asserts a simulated solve matches the serial reference bit-for-bit
    /// up to a tight tolerance.
    #[track_caller]
    pub fn check_against_reference(l: &LowerTriangularCsr, b: &[f64], x: &[f64]) {
        let x_ref = solve_serial_csr(l, b);
        assert_solutions_close(x, &x_ref, 1e-11);
    }

    /// Small devices exercised in kernel unit tests.
    pub fn test_devices() -> Vec<DeviceConfig> {
        let mut small = DeviceConfig::pascal_like();
        small.sm_count = 2;
        small.max_warps_per_sm = 8;
        vec![DeviceConfig::pascal_like(), small]
    }

    /// A basket of small matrices covering the structural corner cases.
    pub fn test_matrices() -> Vec<(&'static str, LowerTriangularCsr)> {
        use capellini_sparse::gen;
        vec![
            ("paper-example", capellini_sparse::paper_example()),
            ("diagonal", gen::diagonal(70)),
            ("chain", gen::chain(129, 1, 7)),
            ("chain-k3", gen::chain(80, 3, 8)),
            ("random-wide", gen::random_k(400, 3, 400, 9)),
            ("random-narrow", gen::random_k(300, 2, 8, 10)),
            ("banded", gen::banded(200, 12, 0.5, 11)),
            ("dense-band", gen::dense_band(150, 40, 12)),
            ("powerlaw", gen::powerlaw(500, 3.0, 13)),
            ("lp-wide", gen::ultra_sparse_wide(400, 8, 2, 14)),
            ("circuit", gen::circuit_like(400, 4, 64, 15)),
            ("stencil", gen::stencil2d(20, 20, 16)),
            ("layered", gen::layered(350, 4, 5, 17)),
            ("single-row", gen::diagonal(1)),
            ("two-rows", gen::chain(2, 1, 18)),
        ]
    }
}
