//! Algorithm 4: **Two-Phase CapelliniSpTRSV** — the basic thread-level
//! design, kept as the ablation baseline for §5.3's "optimization analysis"
//! (Writing-First is reported 28.9× faster).
//!
//! Phase 1 busy-waits on every dependency *outside* the warp
//! (`col < warp_begin`), which stalls the whole warp on the slowest
//! dependency; phase 2 runs a bounded `for k in 0..WARP_SIZE` sweep over the
//! in-warp dependencies, each iteration consuming all ready elements and
//! finalizing rows whose diagonal is reached — at least one per iteration,
//! hence no deadlock.

use capellini_simt::{Effect, GpuDevice, LaneMem, LaunchStats, Pc, SimtError, WarpKernel, PC_EXIT};
use capellini_sparse::LowerTriangularCsr;

use crate::buffers::{DeviceCsr, SolveBuffers};
use crate::kernels::{run_on_fresh_device, SimSolve};

const P_LD_BEGIN: Pc = 0;
const P_LD_END: Pc = 1;
const P1_CHECK: Pc = 2;
const P1_LD_COL: Pc = 3;
const P1_BR_OUT: Pc = 4;
const P1_POLL: Pc = 5;
const P1_BR_READY: Pc = 6;
const P1_LD_VAL: Pc = 7;
const P1_LD_X: Pc = 8;
const P1_FMA: Pc = 9;
const P2_INIT: Pc = 10;
const P2_LOOP: Pc = 11;
const P2_LD_COL: Pc = 12;
const P2_POLL: Pc = 13;
const P2_BR_READY: Pc = 14;
const P2_LD_VAL: Pc = 15;
const P2_LD_X: Pc = 16;
const P2_FMA: Pc = 17;
const P2_BR_DIAG: Pc = 18;
const P_LD_B: Pc = 19;
const P_LD_DIAG: Pc = 20;
const P_DIV: Pc = 21;
const P_ST_X: Pc = 22;
const P_FENCE: Pc = 23;
const P_ST_FLAG: Pc = 24;
const P2_NEXT: Pc = 25;

/// The Two-Phase kernel (Algorithm 4).
pub struct TwoPhaseKernel {
    m: DeviceCsr,
    sb: SolveBuffers,
    warp_size: u32,
}

/// Per-lane registers.
#[derive(Default)]
pub struct TpLane {
    j: u32,
    row_end: u32,
    col: u32,
    k: u32,
    warp_begin: u32,
    left_sum: f64,
    v: f64,
    bv: f64,
    xi: f64,
    ready: bool,
    done: bool,
}

impl TwoPhaseKernel {
    /// Creates the kernel over uploaded buffers for a given warp width.
    pub fn new(m: DeviceCsr, sb: SolveBuffers, warp_size: usize) -> Self {
        TwoPhaseKernel {
            m,
            sb,
            warp_size: warp_size as u32,
        }
    }
}

impl WarpKernel for TwoPhaseKernel {
    type Lane = TpLane;

    fn name(&self) -> &'static str {
        "capellini-two-phase"
    }

    fn make_lane(&self, _tid: u32) -> TpLane {
        TpLane::default()
    }

    fn exec(&self, pc: Pc, l: &mut TpLane, tid: u32, mem: &mut LaneMem<'_>) -> Effect {
        let i = tid as usize;
        match pc {
            P_LD_BEGIN => {
                if i >= self.m.n {
                    return Effect::exit();
                }
                l.warp_begin = (tid / self.warp_size) * self.warp_size;
                l.j = mem.load_u32(self.m.row_ptr, i);
                Effect::to(P_LD_END)
            }
            P_LD_END => {
                l.row_end = mem.load_u32(self.m.row_ptr, i + 1);
                Effect::to(P1_CHECK)
            }
            // ---- Phase 1: dependencies outside the warp -----------------
            P1_CHECK => {
                if l.j < l.row_end {
                    Effect::to(P1_LD_COL)
                } else {
                    Effect::to(P2_INIT)
                }
            }
            P1_LD_COL => {
                l.col = mem.load_u32(self.m.col_idx, l.j as usize);
                Effect::to(P1_BR_OUT)
            }
            P1_BR_OUT => {
                if l.col < l.warp_begin {
                    Effect::to(P1_POLL)
                } else {
                    Effect::to(P2_INIT) // `break`: the rest is in-warp
                }
            }
            P1_POLL => {
                l.ready = mem.poll_flag(self.sb.flags, l.col as usize);
                Effect::to(P1_BR_READY)
            }
            P1_BR_READY => {
                if l.ready {
                    Effect::to(P1_LD_VAL)
                } else {
                    Effect::to(P1_POLL) // traditional busy-wait (line 9-10)
                }
            }
            P1_LD_VAL => {
                l.v = mem.load_f64(self.m.values, l.j as usize);
                Effect::to(P1_LD_X)
            }
            P1_LD_X => {
                l.xi = mem.load_f64(self.sb.x, l.col as usize);
                Effect::to(P1_FMA)
            }
            P1_FMA => {
                l.left_sum += l.v * l.xi;
                l.j += 1;
                Effect::flops(P1_CHECK, 2)
            }
            // ---- Phase 2: the bounded in-warp sweep ----------------------
            P2_INIT => {
                l.k = 0;
                Effect::to(P2_LOOP)
            }
            P2_LOOP => {
                if l.done || l.k >= self.warp_size {
                    Effect::exit()
                } else {
                    Effect::to(P2_LD_COL)
                }
            }
            P2_LD_COL => {
                l.col = mem.load_u32(self.m.col_idx, l.j as usize);
                Effect::to(P2_POLL)
            }
            P2_POLL => {
                l.ready = mem.poll_flag(self.sb.flags, l.col as usize);
                Effect::to(P2_BR_READY)
            }
            P2_BR_READY => {
                if l.ready {
                    Effect::to(P2_LD_VAL)
                } else {
                    Effect::to(P2_BR_DIAG)
                }
            }
            P2_LD_VAL => {
                l.v = mem.load_f64(self.m.values, l.j as usize);
                Effect::to(P2_LD_X)
            }
            P2_LD_X => {
                l.xi = mem.load_f64(self.sb.x, l.col as usize);
                Effect::to(P2_FMA)
            }
            P2_FMA => {
                l.left_sum += l.v * l.xi;
                l.j += 1;
                Effect::flops(P2_LD_COL, 2)
            }
            P2_BR_DIAG => {
                if l.col == tid {
                    Effect::to(P_LD_B)
                } else {
                    Effect::to(P2_NEXT)
                }
            }
            P_LD_B => {
                l.bv = mem.load_f64(self.sb.b, i);
                Effect::to(P_LD_DIAG)
            }
            P_LD_DIAG => {
                l.v = mem.load_f64(self.m.values, l.row_end as usize - 1);
                Effect::to(P_DIV)
            }
            P_DIV => {
                l.xi = (l.bv - l.left_sum) / l.v;
                Effect::flops(P_ST_X, 2)
            }
            P_ST_X => {
                mem.store_f64(self.sb.x, i, l.xi);
                Effect::to(P_FENCE)
            }
            P_FENCE => Effect::fence(P_ST_FLAG),
            P_ST_FLAG => {
                mem.store_flag(self.sb.flags, i, true);
                l.done = true;
                Effect::to(P2_NEXT) // the `break` resolves at the loop head
            }
            P2_NEXT => {
                l.k += 1;
                Effect::to(P2_LOOP)
            }
            _ => unreachable!("two-phase has no pc {pc}"),
        }
    }

    fn reconv(&self, pc: Pc) -> Pc {
        match pc {
            P_LD_BEGIN => PC_EXIT,
            // Phase-1 loop exits converge at the phase-2 entry.
            P1_CHECK | P1_BR_OUT => P2_INIT,
            // The phase-1 busy-wait loop: exit target is the consume path.
            P1_BR_READY => P1_LD_VAL,
            // The bounded for-loop: exits converge at kernel end.
            P2_LOOP => PC_EXIT,
            // In-warp consume loop exits at the diagonal check.
            P2_BR_READY => P2_BR_DIAG,
            // finalize-vs-continue converges at the loop latch.
            P2_BR_DIAG => P2_NEXT,
            _ => unreachable!("pc {pc} cannot diverge"),
        }
    }

    fn branch_order(&self, pc: Pc, target: Pc) -> u8 {
        match pc {
            // Busy-wait: the spinning side is the compiled fall-through.
            // Legal here because phase-1 dependencies are outside the warp.
            P1_BR_READY => {
                if target == P1_POLL {
                    0
                } else {
                    1
                }
            }
            // Consume side first in the phase-2 ready check.
            P2_BR_READY => {
                if target == P2_LD_VAL {
                    0
                } else {
                    1
                }
            }
            // Finalize first at the diagonal check (same reasoning as
            // Writing-First, though here the reconvergence at P2_NEXT makes
            // either order live — the `for` bound guarantees progress).
            P2_BR_DIAG => {
                if target == P_LD_B {
                    0
                } else {
                    1
                }
            }
            _ => {
                if target == PC_EXIT {
                    1
                } else {
                    0
                }
            }
        }
    }

    fn pc_name(&self, pc: Pc) -> &'static str {
        match pc {
            P_LD_BEGIN => "ld rowPtr[i]",
            P_LD_END => "ld rowPtr[i+1]",
            P1_CHECK => "phase1: j<end?",
            P1_LD_COL => "phase1: ld col",
            P1_BR_OUT => "phase1: col<warp_begin?",
            P1_POLL => "phase1: poll",
            P1_BR_READY => "phase1: busywait",
            P1_LD_VAL => "phase1: ld val",
            P1_LD_X => "phase1: ld x",
            P1_FMA => "phase1: fma",
            P2_INIT => "phase2: k=0",
            P2_LOOP => "phase2: k<WS?",
            P2_LD_COL => "phase2: ld col",
            P2_POLL => "phase2: poll",
            P2_BR_READY => "phase2: ready?",
            P2_LD_VAL => "phase2: ld val",
            P2_LD_X => "phase2: ld x",
            P2_FMA => "phase2: fma",
            P2_BR_DIAG => "phase2: col==i?",
            P_LD_B => "ld b[i]",
            P_LD_DIAG => "ld diag",
            P_DIV => "div",
            P_ST_X => "st x[i]",
            P_FENCE => "threadfence",
            P_ST_FLAG => "st get_value[i]",
            P2_NEXT => "phase2: k+=1",
            _ => "?",
        }
    }

    /// Busy-wait purity (spin fast-forwarding): phase-1 polls purely; P2_POLL counts iterations (`l.k`) and must replay.
    fn spin_pure(&self, pc: Pc) -> bool {
        pc == P1_POLL
    }
}

/// Runs Two-Phase CapelliniSpTRSV on the device (buffers pre-uploaded).
pub fn launch(
    dev: &mut GpuDevice,
    m: DeviceCsr,
    sb: SolveBuffers,
) -> Result<LaunchStats, SimtError> {
    let ws = dev.config().warp_size;
    let n_warps = m.n.div_ceil(ws);
    dev.launch(&TwoPhaseKernel::new(m, sb, ws), n_warps)
}

/// Convenience: upload, solve, read back.
pub fn solve(
    dev: &mut GpuDevice,
    l: &LowerTriangularCsr,
    b: &[f64],
) -> Result<SimSolve, SimtError> {
    run_on_fresh_device(dev, l, b, launch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::{check_against_reference, problem, test_devices, test_matrices};
    use capellini_simt::{DeviceConfig, GpuDevice};

    #[test]
    fn solves_all_test_matrices_on_all_devices() {
        for cfg in test_devices() {
            for (name, l) in test_matrices() {
                let (_, b) = problem(&l);
                let mut dev = GpuDevice::new(cfg.clone());
                let out = solve(&mut dev, &l, &b)
                    .unwrap_or_else(|e| panic!("{name} on {}: {e}", cfg.name));
                check_against_reference(&l, &b, &out.x);
            }
        }
    }

    #[test]
    fn chain_exercises_the_bounded_phase2_sweep() {
        let l = capellini_sparse::gen::chain(200, 1, 4);
        let (_, b) = problem(&l);
        let mut dev = GpuDevice::new(DeviceConfig::pascal_like());
        let out = solve(&mut dev, &l, &b).unwrap();
        check_against_reference(&l, &b, &out.x);
    }

    #[test]
    fn slower_than_writing_first_on_wide_matrices() {
        // §5.3: the Writing-First optimization dominates Two-Phase.
        let l = capellini_sparse::gen::random_k(3000, 2, 3000, 5);
        let (_, b) = problem(&l);
        let mut d1 = GpuDevice::new(DeviceConfig::pascal_like());
        let tp = solve(&mut d1, &l, &b).unwrap();
        let mut d2 = GpuDevice::new(DeviceConfig::pascal_like());
        let wf = crate::kernels::writing_first::solve(&mut d2, &l, &b).unwrap();
        assert!(
            tp.stats.cycles > wf.stats.cycles,
            "two-phase {} cycles vs writing-first {}",
            tp.stats.cycles,
            wf.stats.cycles
        );
    }
}
