//! Native multithreaded CPU solvers — the real-hardware counterparts of the
//! GPU kernels, used by the Criterion benchmarks (`cpu_solvers`) and as an
//! independent correctness oracle. The thread-level busy-wait solver is the
//! CPU analog of CapelliniSpTRSV: self-scheduled rows, release/acquire
//! completion flags, no barriers.

pub mod levelset;
pub mod selfsched;

pub use levelset::solve_levelset_parallel;
pub use selfsched::{solve_selfsched, Distribution};
