//! The CPU analog of CapelliniSpTRSV: every row is solved by exactly one
//! thread, rows are distributed statically, and dependencies are awaited by
//! spinning on per-row completion flags — no level analysis, no barriers.
//!
//! Memory ordering: a solver thread publishes `x[i]` with a `Relaxed` store
//! of the bits followed by a `Release` store of the flag; consumers pair it
//! with an `Acquire` load of the flag before reading the bits (the CPU
//! equivalent of the kernel's `x[i] = xi; __threadfence(); get_value[i] = 1`).
//!
//! Liveness: threads process their assigned rows in increasing row order,
//! so the owner of the globally minimal unsolved row is always working on
//! it (its earlier rows are already solved), and that row's dependencies
//! are all solved — progress is guaranteed for any distribution.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

use capellini_sparse::LowerTriangularCsr;

/// How rows are assigned to threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distribution {
    /// Row `i` goes to thread `i mod T` (good load balance on chains).
    Cyclic,
    /// Contiguous blocks of `n/T` rows per thread (better locality).
    Blocked,
}

/// Solves `Lx = b` with `n_threads` self-scheduled busy-waiting threads.
pub fn solve_selfsched(
    l: &LowerTriangularCsr,
    b: &[f64],
    n_threads: usize,
    dist: Distribution,
) -> Vec<f64> {
    let n = l.n();
    assert_eq!(b.len(), n, "rhs length must equal matrix dimension");
    let n_threads = n_threads.clamp(1, n.max(1));
    if n_threads == 1 || n < 2 {
        return crate::reference::solve_serial_csr(l, b);
    }

    let x_bits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
    let flags: Vec<AtomicU8> = (0..n).map(|_| AtomicU8::new(0)).collect();
    let row_ptr = l.csr().row_ptr();
    let col_idx = l.csr().col_idx();
    let values = l.csr().values();

    let solve_row = |i: usize| {
        let (lo, hi) = (row_ptr[i] as usize, row_ptr[i + 1] as usize);
        let mut left_sum = 0.0f64;
        for j in lo..hi - 1 {
            let col = col_idx[j] as usize;
            // Spin until the dependency is published.
            let mut spins = 0u32;
            while flags[col].load(Ordering::Acquire) == 0 {
                spins += 1;
                if spins.is_multiple_of(64) {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
            let xv = f64::from_bits(x_bits[col].load(Ordering::Relaxed));
            left_sum += values[j] * xv;
        }
        let xi = (b[i] - left_sum) / values[hi - 1];
        x_bits[i].store(xi.to_bits(), Ordering::Relaxed);
        flags[i].store(1, Ordering::Release);
    };

    std::thread::scope(|s| {
        for t in 0..n_threads {
            let solve_row = &solve_row;
            s.spawn(move || match dist {
                Distribution::Cyclic => {
                    let mut i = t;
                    while i < n {
                        solve_row(i);
                        i += n_threads;
                    }
                }
                Distribution::Blocked => {
                    let chunk = n.div_ceil(n_threads);
                    let lo = t * chunk;
                    let hi = ((t + 1) * chunk).min(n);
                    for i in lo..hi {
                        solve_row(i);
                    }
                }
            });
        }
    });

    x_bits
        .iter()
        .map(|v| f64::from_bits(v.load(Ordering::Relaxed)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use capellini_sparse::linalg::assert_solutions_close;
    use capellini_sparse::{gen, paper_example};

    use crate::reference::solve_serial_csr;

    fn check(l: &LowerTriangularCsr, threads: usize, dist: Distribution) {
        let n = l.n();
        let b: Vec<f64> = (0..n).map(|i| ((i * 31 + 7) % 19) as f64 - 9.0).collect();
        let x_ref = solve_serial_csr(l, &b);
        let x = solve_selfsched(l, &b, threads, dist);
        assert_solutions_close(&x, &x_ref, 1e-11);
    }

    #[test]
    fn matches_reference_across_matrices_and_threads() {
        let mats = [
            paper_example(),
            gen::random_k(2000, 3, 2000, 21),
            gen::powerlaw(1500, 3.0, 22),
            gen::dense_band(600, 24, 23),
            gen::diagonal(257),
        ];
        for l in &mats {
            for threads in [2, 4, 8] {
                check(l, threads, Distribution::Cyclic);
                check(l, threads, Distribution::Blocked);
            }
        }
    }

    #[test]
    fn chain_matrix_completes_under_contention() {
        // Fully sequential dependency chain: the hardest liveness case.
        let l = gen::chain(4000, 1, 24);
        check(&l, 8, Distribution::Cyclic);
        check(&l, 8, Distribution::Blocked);
    }

    #[test]
    fn single_thread_falls_back_to_serial() {
        let l = gen::random_k(300, 2, 300, 25);
        check(&l, 1, Distribution::Cyclic);
    }

    #[test]
    fn more_threads_than_rows_is_fine() {
        let l = gen::chain(5, 1, 26);
        check(&l, 64, Distribution::Cyclic);
    }

    #[test]
    fn repeated_runs_are_deterministic_in_value() {
        // Each row's sum is accumulated in row order by one thread, so the
        // result is bitwise identical across runs despite racing schedules.
        let l = gen::random_k(1000, 4, 1000, 27);
        let b: Vec<f64> = (0..1000).map(|i| (i % 13) as f64).collect();
        let a = solve_selfsched(&l, &b, 8, Distribution::Cyclic);
        let c = solve_selfsched(&l, &b, 8, Distribution::Cyclic);
        assert_eq!(a, c);
    }
}
