//! CPU Level-Set SpTRSV (Algorithm 2 on threads + barriers): levels are
//! processed in order; within a level, rows are striped across a persistent
//! thread team; a barrier separates levels. This is the classic
//! Anderson-Saad/Saltz execution model and the baseline whose
//! synchronization cost the sync-free family removes.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;

use capellini_sparse::{LevelSets, LowerTriangularCsr};

/// Solves `Lx = b` level by level with `n_threads` workers and a barrier
/// between levels. The level analysis must come from
/// [`LevelSets::analyze`] on the same matrix.
pub fn solve_levelset_parallel(
    l: &LowerTriangularCsr,
    levels: &LevelSets,
    b: &[f64],
    n_threads: usize,
) -> Vec<f64> {
    let n = l.n();
    assert_eq!(b.len(), n, "rhs length must equal matrix dimension");
    assert_eq!(
        levels.n_rows(),
        n,
        "level analysis does not match the matrix"
    );
    let n_threads = n_threads.clamp(1, n.max(1));
    if n_threads == 1 || n < 2 {
        return crate::reference::solve_serial_csr(l, b);
    }

    // x is written before the barrier and read only after it, so Relaxed
    // atomics (with the barrier providing the happens-before edge) suffice.
    let x_bits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
    let row_ptr = l.csr().row_ptr();
    let col_idx = l.csr().col_idx();
    let values = l.csr().values();
    let barrier = Barrier::new(n_threads);

    std::thread::scope(|s| {
        for t in 0..n_threads {
            let x_bits = &x_bits;
            let barrier = &barrier;
            s.spawn(move || {
                for lvl in 0..levels.n_levels() {
                    let rows = levels.rows_in_level(lvl);
                    // Stripe the level's rows over the team.
                    let mut k = t;
                    while k < rows.len() {
                        let i = rows[k] as usize;
                        let (lo, hi) = (row_ptr[i] as usize, row_ptr[i + 1] as usize);
                        let mut left_sum = 0.0f64;
                        for j in lo..hi - 1 {
                            let col = col_idx[j] as usize;
                            left_sum +=
                                values[j] * f64::from_bits(x_bits[col].load(Ordering::Relaxed));
                        }
                        let xi = (b[i] - left_sum) / values[hi - 1];
                        x_bits[i].store(xi.to_bits(), Ordering::Relaxed);
                        k += n_threads;
                    }
                    // Inter-level synchronization: the cost this algorithm
                    // pays once per level.
                    barrier.wait();
                }
            });
        }
    });

    x_bits
        .iter()
        .map(|v| f64::from_bits(v.load(Ordering::Relaxed)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use capellini_sparse::linalg::assert_solutions_close;
    use capellini_sparse::{gen, paper_example};

    use crate::reference::solve_serial_csr;

    fn check(l: &LowerTriangularCsr, threads: usize) {
        let n = l.n();
        let b: Vec<f64> = (0..n).map(|i| ((i * 13 + 3) % 29) as f64 - 14.0).collect();
        let levels = LevelSets::analyze(l);
        let x_ref = solve_serial_csr(l, &b);
        let x = solve_levelset_parallel(l, &levels, &b, threads);
        assert_solutions_close(&x, &x_ref, 1e-11);
    }

    #[test]
    fn matches_reference_across_matrices() {
        for l in [
            paper_example(),
            gen::random_k(1500, 3, 1500, 31),
            gen::stencil2d(40, 40, 32),
            gen::dense_band(500, 16, 33),
            gen::diagonal(100),
        ] {
            for threads in [2, 4, 8] {
                check(&l, threads);
            }
        }
    }

    #[test]
    fn chain_is_sequential_but_correct() {
        check(&gen::chain(800, 1, 34), 4);
    }

    #[test]
    #[should_panic(expected = "level analysis does not match")]
    fn mismatched_levels_panic() {
        let l = gen::diagonal(10);
        let other = gen::diagonal(11);
        let levels = LevelSets::analyze(&other);
        let b = vec![1.0; 10];
        solve_levelset_parallel(&l, &levels, &b, 2);
    }
}
