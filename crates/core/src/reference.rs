//! Algorithm 1: the serial forward-substitution reference. Every other
//! solver in this project is validated against it.

use capellini_sparse::{CscMatrix, LowerTriangularCsr};

/// Serial CSR forward substitution (the paper's Algorithm 1).
pub fn solve_serial_csr(l: &LowerTriangularCsr, b: &[f64]) -> Vec<f64> {
    let n = l.n();
    assert_eq!(b.len(), n, "rhs length must equal matrix dimension");
    let mut x = vec![0.0f64; n];
    let row_ptr = l.csr().row_ptr();
    let col_idx = l.csr().col_idx();
    let values = l.csr().values();
    for i in 0..n {
        let (lo, hi) = (row_ptr[i] as usize, row_ptr[i + 1] as usize);
        let mut left_sum = 0.0f64;
        for j in lo..hi - 1 {
            left_sum += values[j] * x[col_idx[j] as usize];
        }
        x[i] = (b[i] - left_sum) / values[hi - 1];
    }
    x
}

/// Serial CSC forward substitution (column-sweep variant): once `x[j]` is
/// known, its column's updates are scattered into a running right-hand side.
/// This is the access pattern of Liu et al.'s CSC-based SyncFree algorithm.
pub fn solve_serial_csc(l: &CscMatrix, b: &[f64]) -> Vec<f64> {
    let n = l.n_cols();
    assert_eq!(l.n_rows(), n, "matrix must be square");
    assert_eq!(b.len(), n, "rhs length must equal matrix dimension");
    let mut x = b.to_vec();
    for j in 0..n {
        let (rows, vals) = l.col(j);
        // Diagonal first (top of the column in a lower-triangular CSC).
        assert!(
            !rows.is_empty() && rows[0] as usize == j,
            "missing diagonal in column {j}"
        );
        x[j] /= vals[0];
        let xj = x[j];
        for (&r, &v) in rows.iter().zip(vals).skip(1) {
            x[r as usize] -= v * xj;
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use capellini_sparse::linalg::{residual_inf, rhs_for_solution};
    use capellini_sparse::{gen, paper_example};

    #[test]
    fn csr_reference_solves_paper_example() {
        let l = paper_example();
        let x_true: Vec<f64> = (0..8).map(|i| (i as f64) - 3.5).collect();
        let b = rhs_for_solution(&l, &x_true);
        let x = solve_serial_csr(&l, &b);
        for (a, e) in x.iter().zip(&x_true) {
            assert!((a - e).abs() < 1e-12);
        }
    }

    #[test]
    fn csc_variant_agrees_with_csr() {
        let l = gen::random_k(500, 4, 500, 3);
        let b: Vec<f64> = (0..500).map(|i| (i % 17) as f64 - 8.0).collect();
        let x_csr = solve_serial_csr(&l, &b);
        let x_csc = solve_serial_csc(&l.csr().to_csc(), &b);
        for (a, e) in x_csr.iter().zip(&x_csc) {
            assert!((a - e).abs() < 1e-10, "{a} vs {e}");
        }
        assert!(residual_inf(&l, &x_csr, &b) < 1e-10);
    }

    #[test]
    fn identity_solve_returns_rhs() {
        let l = gen::diagonal(16);
        let b: Vec<f64> = (0..16).map(|i| i as f64).collect();
        assert_eq!(solve_serial_csr(&l, &b), b);
    }

    #[test]
    #[should_panic(expected = "rhs length")]
    fn wrong_rhs_length_panics() {
        let l = gen::diagonal(4);
        solve_serial_csr(&l, &[1.0, 2.0]);
    }
}
