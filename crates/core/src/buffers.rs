//! Device-resident matrix and solve buffers shared by all GPU kernels.

use capellini_simt::{BufF64, BufFlag, BufU32, GpuDevice};
use capellini_sparse::LowerTriangularCsr;

/// A lower-triangular CSR matrix uploaded to device memory.
#[derive(Debug, Clone, Copy)]
pub struct DeviceCsr {
    /// Matrix dimension.
    pub n: usize,
    /// Stored nonzeros.
    pub nnz: usize,
    /// `csrRowPtr` (n+1 entries).
    pub row_ptr: BufU32,
    /// `csrColIdx` (nnz entries).
    pub col_idx: BufU32,
    /// `csrVal` (nnz entries).
    pub values: BufF64,
}

impl DeviceCsr {
    /// Uploads the matrix arrays.
    pub fn upload(dev: &mut GpuDevice, l: &LowerTriangularCsr) -> Self {
        let mem = dev.mem();
        DeviceCsr {
            n: l.n(),
            nnz: l.nnz(),
            row_ptr: mem.alloc_u32(l.csr().row_ptr()),
            col_idx: mem.alloc_u32(l.csr().col_idx()),
            values: mem.alloc_f64(l.csr().values()),
        }
    }
}

/// Right-hand side, solution, and completion-flag buffers for one solve.
#[derive(Debug, Clone, Copy)]
pub struct SolveBuffers {
    /// Right-hand side `b`.
    pub b: BufF64,
    /// Solution vector `x` (zero-initialised).
    pub x: BufF64,
    /// The paper's `get_value` array.
    pub flags: BufFlag,
}

impl SolveBuffers {
    /// Allocates `b`, a zeroed `x`, and a zeroed flag array.
    pub fn upload(dev: &mut GpuDevice, b: &[f64]) -> Self {
        let mem = dev.mem();
        SolveBuffers {
            b: mem.alloc_f64(b),
            x: mem.alloc_f64_zeroed(b.len()),
            flags: mem.alloc_flags(b.len()),
        }
    }

    /// Reads the solution back to the host.
    pub fn read_x(self, dev: &GpuDevice) -> Vec<f64> {
        dev.mem_ref().read_f64(self.x).to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capellini_simt::DeviceConfig;
    use capellini_sparse::paper_example;

    #[test]
    fn upload_round_trips_arrays() {
        let l = paper_example();
        let mut dev = GpuDevice::new(DeviceConfig::pascal_like());
        let dm = DeviceCsr::upload(&mut dev, &l);
        assert_eq!(dm.n, 8);
        assert_eq!(dm.nnz, 17);
        assert_eq!(dev.mem_ref().read_u32(dm.row_ptr), l.csr().row_ptr());
        assert_eq!(dev.mem_ref().read_f64(dm.values), l.csr().values());
        let sb = SolveBuffers::upload(&mut dev, &[1.0; 8]);
        assert_eq!(dev.mem_ref().read_f64(sb.x), &[0.0; 8]);
        assert_eq!(dev.mem_ref().read_flags(sb.flags), &[0; 8]);
    }
}
