//! Device-resident matrix and solve buffers shared by all GPU kernels.

use capellini_simt::{BufF64, BufFlag, BufU32, GpuDevice};
use capellini_sparse::LowerTriangularCsr;

/// A lower-triangular CSR matrix uploaded to device memory.
#[derive(Debug, Clone, Copy)]
pub struct DeviceCsr {
    /// Matrix dimension.
    pub n: usize,
    /// Stored nonzeros.
    pub nnz: usize,
    /// `csrRowPtr` (n+1 entries).
    pub row_ptr: BufU32,
    /// `csrColIdx` (nnz entries).
    pub col_idx: BufU32,
    /// `csrVal` (nnz entries).
    pub values: BufF64,
}

impl DeviceCsr {
    /// Uploads the matrix arrays.
    pub fn upload(dev: &mut GpuDevice, l: &LowerTriangularCsr) -> Self {
        let mem = dev.mem();
        DeviceCsr {
            n: l.n(),
            nnz: l.nnz(),
            row_ptr: mem.alloc_u32(l.csr().row_ptr()),
            col_idx: mem.alloc_u32(l.csr().col_idx()),
            values: mem.alloc_f64(l.csr().values()),
        }
    }
}

/// Right-hand side, solution, and completion-flag buffers for one solve.
#[derive(Debug, Clone, Copy)]
pub struct SolveBuffers {
    /// Right-hand side `b`.
    pub b: BufF64,
    /// Solution vector `x` (zero-initialised).
    pub x: BufF64,
    /// The paper's `get_value` array.
    pub flags: BufFlag,
}

impl SolveBuffers {
    /// Allocates `b`, a zeroed `x`, and a zeroed flag array.
    pub fn upload(dev: &mut GpuDevice, b: &[f64]) -> Self {
        let mem = dev.mem();
        SolveBuffers {
            b: mem.alloc_f64(b),
            x: mem.alloc_f64_zeroed(b.len()),
            flags: mem.alloc_flags(b.len()),
        }
    }

    /// Reads the solution back to the host.
    pub fn read_x(self, dev: &GpuDevice) -> Vec<f64> {
        dev.mem_ref().read_f64(self.x).to_vec()
    }
}

/// Device-memory tiling of an `n × k` right-hand-side block.
///
/// The host-side contract is always row-major (`bs[i*nrhs + r]`); the layout
/// only decides how the block is *tiled in device memory*. Row-major packs a
/// row's `k` values into consecutive sectors (the amortization the multi-RHS
/// kernels were designed around); column-major stores each right-hand side
/// contiguously (`x[r*n + i]`), scattering one row's values across `k`
/// distant regions. Per column the floating-point operation order is
/// identical either way, so solutions are bit-identical — only the memory
/// traffic (and, under [`capellini_simt::DeviceConfig::with_cache`], the
/// hit rates) differ, which is what the `repro locality` experiment
/// measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RhsLayout {
    /// `x[i*k + r]`: one row's `k` values in consecutive sectors (default).
    #[default]
    RowMajor,
    /// `x[r*n + i]`: each right-hand side contiguous, rows strided by `n`.
    ColMajor,
}

impl RhsLayout {
    /// Element index of component `(row i, rhs r)` in an `n × k` block.
    #[inline]
    pub fn index(self, i: usize, r: usize, n: usize, k: usize) -> usize {
        match self {
            RhsLayout::RowMajor => i * k + r,
            RhsLayout::ColMajor => r * n + i,
        }
    }

    /// Short label for tables and reports.
    pub fn label(self) -> &'static str {
        match self {
            RhsLayout::RowMajor => "row-major",
            RhsLayout::ColMajor => "col-major",
        }
    }
}

/// Solve buffers for an `n × k` block of right-hand sides (SpTRSM): `b` and
/// `x` hold `n*k` values tiled per [`RhsLayout`] (row-major unless asked
/// otherwise), while the completion flags stay per *row* — one flag
/// publishes all `k` components of a row.
#[derive(Debug, Clone, Copy)]
pub struct MultiSolveBuffers {
    /// Number of right-hand sides `k`.
    pub nrhs: usize,
    /// Right-hand sides, `n × k` in `layout` order.
    pub b: BufF64,
    /// Solutions, `n × k` in `layout` order (zero-initialised).
    pub x: BufF64,
    /// The paper's `get_value` array (`n` entries).
    pub flags: BufFlag,
    /// Device-memory tiling of `b` and `x`.
    pub layout: RhsLayout,
}

impl MultiSolveBuffers {
    /// Allocates `b` from a row-major `n × k` block, plus zeroed `x` and
    /// flag arrays, tiled row-major on the device.
    ///
    /// # Panics
    /// If `bs.len()` is not `n * nrhs`.
    pub fn upload(dev: &mut GpuDevice, bs: &[f64], n: usize, nrhs: usize) -> Self {
        Self::upload_with_layout(dev, bs, n, nrhs, RhsLayout::RowMajor)
    }

    /// Allocates buffers tiled per `layout`. `bs` is always the host-side
    /// row-major block; a column-major upload repacks it on the way in, and
    /// [`MultiSolveBuffers::read_x`] repacks the solution on the way out, so
    /// callers never observe the device tiling.
    ///
    /// # Panics
    /// If `bs.len()` is not `n * nrhs`.
    pub fn upload_with_layout(
        dev: &mut GpuDevice,
        bs: &[f64],
        n: usize,
        nrhs: usize,
        layout: RhsLayout,
    ) -> Self {
        assert!(nrhs >= 1, "need at least one right-hand side");
        assert_eq!(bs.len(), n * nrhs, "B must be n x nrhs row-major");
        let mem = dev.mem();
        let b = match layout {
            RhsLayout::RowMajor => mem.alloc_f64(bs),
            RhsLayout::ColMajor => {
                let mut packed = vec![0.0; bs.len()];
                for i in 0..n {
                    for r in 0..nrhs {
                        packed[r * n + i] = bs[i * nrhs + r];
                    }
                }
                mem.alloc_f64(&packed)
            }
        };
        MultiSolveBuffers {
            nrhs,
            b,
            x: mem.alloc_f64_zeroed(bs.len()),
            flags: mem.alloc_flags(n),
            layout,
        }
    }

    /// Reads the solution block back to the host, always row-major
    /// `n × k` regardless of the device tiling.
    pub fn read_x(self, dev: &GpuDevice) -> Vec<f64> {
        let raw = dev.mem_ref().read_f64(self.x);
        match self.layout {
            RhsLayout::RowMajor => raw.to_vec(),
            RhsLayout::ColMajor => {
                let n = raw.len() / self.nrhs;
                let mut out = vec![0.0; raw.len()];
                for i in 0..n {
                    for r in 0..self.nrhs {
                        out[i * self.nrhs + r] = raw[r * n + i];
                    }
                }
                out
            }
        }
    }
}

/// Pooled solve buffers: allocated once, reused across many launches on the
/// same device (the session layer's `b`/`x`/`get_value` arrays).
///
/// Reuse is capacity-based: a solve smaller than the pooled capacity keeps
/// the existing allocations. That makes stale-tail hygiene load-bearing —
/// [`PooledSolveBuffers::prepare`] scrubs the *full* capacity of `x` and the
/// flag array and zero-fills the unused tail of `b`, and
/// [`PooledSolveBuffers::read_x`] returns only the active prefix, so values
/// from an earlier, larger solve can never leak into (or be read back from)
/// a later, smaller one.
#[derive(Debug)]
pub struct PooledSolveBuffers {
    /// Capacity of `b`/`x` in elements.
    cap: usize,
    /// Capacity of the flag array in rows.
    rows_cap: usize,
    /// Active element count of the current solve (`n`, or `n*k` batched).
    len: usize,
    /// Active row count of the current solve.
    rows: usize,
    b: BufF64,
    x: BufF64,
    flags: BufFlag,
}

impl PooledSolveBuffers {
    /// Allocates a pool sized for `cap` elements over `rows_cap` rows.
    pub fn new(dev: &mut GpuDevice, cap: usize, rows_cap: usize) -> Self {
        let mem = dev.mem();
        PooledSolveBuffers {
            cap,
            rows_cap,
            len: 0,
            rows: 0,
            b: mem.alloc_f64_zeroed(cap),
            x: mem.alloc_f64_zeroed(cap),
            flags: mem.alloc_flags(rows_cap),
        }
    }

    /// Arms the pool for one solve of `rows` rows with the given packed
    /// right-hand side(s): writes `b` (zero-filling any capacity tail),
    /// zeroes all of `x`, and clears all flags. Grows the allocations if the
    /// problem exceeds the pooled capacity (device memory is append-only, so
    /// outgrown buffers are simply abandoned).
    pub fn prepare(&mut self, dev: &mut GpuDevice, b: &[f64], rows: usize) {
        let mem = dev.mem();
        if b.len() > self.cap {
            self.cap = b.len();
            self.b = mem.alloc_f64(b);
            self.x = mem.alloc_f64_zeroed(self.cap);
        } else {
            mem.write_f64_prefix(self.b, b);
            mem.fill_f64(self.x, 0.0);
        }
        if rows > self.rows_cap {
            self.rows_cap = rows;
            self.flags = mem.alloc_flags(rows);
        } else {
            mem.clear_flags(self.flags);
        }
        self.len = b.len();
        self.rows = rows;
    }

    /// The single-RHS buffer view kernels consume. The handles cover the
    /// full pooled capacity; kernels index only `[0, n)`.
    pub fn view(&self) -> SolveBuffers {
        SolveBuffers {
            b: self.b,
            x: self.x,
            flags: self.flags,
        }
    }

    /// The multi-RHS buffer view for a batched launch over `nrhs` columns.
    ///
    /// # Panics
    /// If the pool was not prepared with `rows * nrhs` elements.
    pub fn view_multi(&self, nrhs: usize) -> MultiSolveBuffers {
        assert_eq!(
            self.len,
            self.rows * nrhs,
            "pool prepared for {} elements, not {} rows x {} rhs",
            self.len,
            self.rows,
            nrhs
        );
        MultiSolveBuffers {
            nrhs,
            b: self.b,
            x: self.x,
            flags: self.flags,
            layout: RhsLayout::RowMajor,
        }
    }

    /// Reads back only the active prefix of the solution — the pooled
    /// capacity beyond the current solve is never observable.
    pub fn read_x(&self, dev: &GpuDevice) -> Vec<f64> {
        dev.mem_ref().read_f64(self.x)[..self.len].to_vec()
    }

    /// Element capacity of `b`/`x`.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Active element count of the current solve.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True until the first [`PooledSolveBuffers::prepare`].
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capellini_simt::DeviceConfig;
    use capellini_sparse::paper_example;

    #[test]
    fn upload_round_trips_arrays() {
        let l = paper_example();
        let mut dev = GpuDevice::new(DeviceConfig::pascal_like());
        let dm = DeviceCsr::upload(&mut dev, &l);
        assert_eq!(dm.n, 8);
        assert_eq!(dm.nnz, 17);
        assert_eq!(dev.mem_ref().read_u32(dm.row_ptr), l.csr().row_ptr());
        assert_eq!(dev.mem_ref().read_f64(dm.values), l.csr().values());
        let sb = SolveBuffers::upload(&mut dev, &[1.0; 8]);
        assert_eq!(dev.mem_ref().read_f64(sb.x), &[0.0; 8]);
        assert_eq!(dev.mem_ref().read_flags(sb.flags), &[0; 8]);
    }

    #[test]
    fn multi_upload_shapes_buffers_correctly() {
        let mut dev = GpuDevice::new(DeviceConfig::pascal_like());
        let bs: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let mb = MultiSolveBuffers::upload(&mut dev, &bs, 4, 3);
        assert_eq!(dev.mem_ref().read_f64(mb.b), &bs[..]);
        assert_eq!(dev.mem_ref().read_f64(mb.x), &[0.0; 12]);
        assert_eq!(dev.mem_ref().read_flags(mb.flags), &[0; 4]);
    }

    /// A column-major upload tiles the device buffer `x[r*n + i]` but the
    /// host contract stays row-major on both sides of the solve.
    #[test]
    fn col_major_upload_round_trips_through_row_major() {
        let mut dev = GpuDevice::new(DeviceConfig::pascal_like());
        let bs: Vec<f64> = (0..12).map(|i| i as f64).collect(); // 4 rows x 3 rhs
        let mb = MultiSolveBuffers::upload_with_layout(&mut dev, &bs, 4, 3, RhsLayout::ColMajor);
        // Device-side: rhs r contiguous, so b[r*n + i] = bs[i*nrhs + r].
        let raw = dev.mem_ref().read_f64(mb.b).to_vec();
        for i in 0..4 {
            for r in 0..3 {
                assert_eq!(raw[r * 4 + i], bs[i * 3 + r]);
            }
        }
        // read_x repacks to row-major; seed x with the packed b to check.
        dev.mem().write_f64(mb.x, &raw);
        assert_eq!(mb.read_x(&dev), bs);
        assert_eq!(RhsLayout::RowMajor.index(2, 1, 4, 3), 7);
        assert_eq!(RhsLayout::ColMajor.index(2, 1, 4, 3), 6);
        assert_eq!(RhsLayout::default(), RhsLayout::RowMajor);
    }

    /// The satellite bugfix scenario: a pooled buffer serves a large solve,
    /// then a strictly smaller one. Without full-capacity scrubbing and
    /// prefix-limited read-back, the second solve would observe the first
    /// solve's tail values.
    #[test]
    fn shrink_then_solve_never_leaks_the_stale_tail() {
        use crate::kernels::writing_first;
        use capellini_sparse::gen;

        let big = paper_example(); // n = 8
        let small = gen::chain(3, 1, 5); // n = 3

        let mut dev = GpuDevice::new(DeviceConfig::pascal_like());
        let dm_big = DeviceCsr::upload(&mut dev, &big);
        let dm_small = DeviceCsr::upload(&mut dev, &small);
        let mut pool = PooledSolveBuffers::new(&mut dev, big.n(), big.n());

        // Large solve: leaves 8 nonzero x values and 8 set flags behind.
        let b_big: Vec<f64> = (0..8).map(|i| i as f64 + 1.0).collect();
        pool.prepare(&mut dev, &b_big, big.n());
        writing_first::launch(&mut dev, dm_big, pool.view()).unwrap();
        let x_big = pool.read_x(&dev);
        assert_eq!(x_big.len(), 8);
        assert!(x_big.iter().any(|&v| v != 0.0));

        // Shrink: same pooled handles, smaller system.
        let b_small = vec![2.0, 2.0, 2.0];
        pool.prepare(&mut dev, &b_small, small.n());
        // Pre-launch, nothing from the big solve may be observable.
        assert_eq!(pool.read_x(&dev).len(), 3);
        assert_eq!(pool.read_x(&dev), vec![0.0; 3]);
        assert_eq!(&dev.mem_ref().read_flags(pool.view().flags)[..8], &[0; 8]);
        // The capacity tail of x must be scrubbed too — kernels never read
        // it, but read-back hygiene should not depend on that.
        assert_eq!(dev.mem_ref().read_f64(pool.view().x), &[0.0; 8]);

        writing_first::launch(&mut dev, dm_small, pool.view()).unwrap();
        let x_small = pool.read_x(&dev);
        assert_eq!(x_small.len(), 3, "read-back must stop at the active len");
        let want = crate::reference::solve_serial_csr(&small, &b_small);
        capellini_sparse::linalg::assert_solutions_close(&x_small, &want, 1e-12);

        // Growing again re-allocates; the pool stays usable.
        pool.prepare(&mut dev, &[1.0; 16], 16);
        assert_eq!(pool.capacity(), 16);
        assert_eq!(pool.read_x(&dev), vec![0.0; 16]);
    }
}
