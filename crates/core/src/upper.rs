//! Backward substitution (`U x = b`) on the simulated GPU, by index
//! reversal: the reversed system is lower triangular, so every SpTRSV
//! kernel in this library applies unchanged. This provides the second
//! sweep of SSOR preconditioning and of `L·Lᵀ` factorizations.

use capellini_simt::{DeviceConfig, SimtError};
use capellini_sparse::triangular::reverse_vector;
use capellini_sparse::UpperTriangularCsr;

use crate::select::Algorithm;
use crate::solver::{solve_simulated, SolveReport};

/// Solves `U x = b` with any lower-triangular algorithm by reversing the
/// index order, solving, and reversing back. The returned report's metrics
/// describe the reversed (lower) solve; its `x` is in the original order.
pub fn solve_upper_simulated(
    config: &DeviceConfig,
    u: &UpperTriangularCsr,
    b: &[f64],
    algorithm: Algorithm,
) -> Result<SolveReport, SimtError> {
    let l = u.to_reversed_lower();
    let b_rev = reverse_vector(b);
    let mut report = solve_simulated(config, &l, &b_rev, algorithm)?;
    report.x = reverse_vector(&report.x);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use capellini_sparse::linalg::{assert_solutions_close, spmv};
    use capellini_sparse::triangular::solve_serial_upper;
    use capellini_sparse::{gen, UpperTriangularCsr};

    #[test]
    fn upper_solve_matches_serial_backward_substitution() {
        let lower = gen::powerlaw(3_000, 3.0, 83);
        let u = UpperTriangularCsr::transpose_of(&lower);
        let x_true: Vec<f64> = (0..u.n()).map(|i| (i % 9) as f64 - 4.0).collect();
        let b = spmv(u.csr(), &x_true);
        let x_serial = solve_serial_upper(&u, &b);
        let cfg = DeviceConfig::pascal_like().scaled_down(4);
        for algo in [
            Algorithm::CapelliniWritingFirst,
            Algorithm::SyncFree,
            Algorithm::LevelSet,
        ] {
            let rep = solve_upper_simulated(&cfg, &u, &b, algo).unwrap();
            assert_solutions_close(&rep.x, &x_serial, 1e-10);
        }
        assert_solutions_close(&x_serial, &x_true, 1e-9);
    }

    #[test]
    fn ldlt_style_two_sweeps_recover_the_solution() {
        // Solve (L Lᵀ) y = c by forward then backward substitution.
        let l = gen::random_k(2_000, 3, 2_000, 84);
        let u = UpperTriangularCsr::transpose_of(&l);
        let y_true: Vec<f64> = (0..l.n()).map(|i| (i % 5) as f64).collect();
        let c = spmv(l.csr(), &spmv(u.csr(), &y_true));
        let cfg = DeviceConfig::turing_like().scaled_down(4);
        let t = solve_simulated(&cfg, &l, &c, Algorithm::CapelliniWritingFirst).unwrap();
        let rep = solve_upper_simulated(&cfg, &u, &t.x, Algorithm::CapelliniWritingFirst).unwrap();
        assert_solutions_close(&rep.x, &y_true, 1e-8);
    }
}
