//! The high-level solve API: dispatches any [`Algorithm`] onto a simulated
//! device, accounts host-side preprocessing, and derives the
//! paper's reporting metrics (GFLOPS, bandwidth, instructions, stalls).

use capellini_simt::{DeviceConfig, GpuDevice, HostCostModel, LaunchStats, Profile, SimtError};
use capellini_sparse::{LevelSets, LowerTriangularCsr, MatrixStats};

use crate::kernels;
use crate::select::{recommend, Algorithm};

/// The outcome of one simulated solve, carrying everything the paper's
/// tables report about a (matrix, algorithm, platform) cell.
#[derive(Debug, Clone)]
pub struct SolveReport {
    /// Which algorithm ran.
    pub algorithm: Algorithm,
    /// The solution vector.
    pub x: Vec<f64>,
    /// Raw simulator counters.
    pub stats: LaunchStats,
    /// Host-side preprocessing time (Table 1's first row group).
    pub preprocessing_ms: f64,
    /// Kernel execution time in milliseconds.
    pub exec_ms: f64,
    /// GFLOPS/s at the paper's 2·nnz flop convention.
    pub gflops: f64,
    /// DRAM read+write bandwidth in GB/s (Figure 7).
    pub bandwidth_gbs: f64,
    /// Per-launch profiles, in launch order — empty unless the device
    /// config armed profiling (`DeviceConfig::with_profile`). Multi-launch
    /// algorithms (Level-Set) produce one profile per level launch.
    pub profiles: Vec<Profile>,
}

/// Runs `algorithm` on a fresh simulated device of the given configuration.
///
/// The whole device configuration flows through verbatim — including
/// [`DeviceConfig::with_engine_threads`], which parallelizes the simulation
/// itself across SM clusters without changing a single reported bit (pinned
/// by `engine_threads_is_bit_transparent_through_the_facade` below and by
/// `tests/engine_cluster.rs`).
///
/// A right-hand side of the wrong length is a recoverable
/// [`SimtError::Launch`] — validation parity with
/// [`crate::session::SolverSession::solve`].
pub fn solve_simulated(
    config: &DeviceConfig,
    l: &LowerTriangularCsr,
    b: &[f64],
    algorithm: Algorithm,
) -> Result<SolveReport, SimtError> {
    let n = l.n();
    if b.len() != n {
        return Err(SimtError::Launch(format!(
            "rhs length {} does not match matrix dimension {n}",
            b.len()
        )));
    }
    let mut dev = GpuDevice::new(config.clone());
    let host = HostCostModel::default();
    let nnz = l.nnz();

    let (sim, preprocessing_ms) = match algorithm {
        Algorithm::LevelSet => {
            let levels = LevelSets::analyze(l);
            let pre = host.levelset_preprocessing_ms(n, nnz, levels.n_levels());
            let dm = crate::buffers::DeviceCsr::upload(&mut dev, l);
            let sb = crate::buffers::SolveBuffers::upload(&mut dev, b);
            let stats = kernels::levelset::launch_with_levels(&mut dev, dm, sb, &levels)?;
            (
                kernels::SimSolve {
                    x: sb.read_x(&dev),
                    stats,
                },
                pre,
            )
        }
        Algorithm::SyncFree => {
            let pre = host.syncfree_preprocessing_ms(n, nnz);
            (kernels::syncfree::solve(&mut dev, l, b)?, pre)
        }
        Algorithm::SyncFreeCsc => {
            // CSC conversion plus the in-degree sweep (one pass over n rows).
            let pre = host.syncfree_preprocessing_ms(n, nnz) + (n as f64 * 0.3) / 1e6;
            (kernels::syncfree_csc::solve(&mut dev, l, b)?, pre)
        }
        Algorithm::CusparseLike => {
            let pre = host.cusparse_preprocessing_ms(n, nnz);
            (kernels::cusparse_like::solve(&mut dev, l, b)?, pre)
        }
        Algorithm::CapelliniTwoPhase => {
            let pre = host.capellini_preprocessing_ms(n);
            (kernels::two_phase::solve(&mut dev, l, b)?, pre)
        }
        Algorithm::CapelliniWritingFirst => {
            let pre = host.capellini_preprocessing_ms(n);
            (kernels::writing_first::solve(&mut dev, l, b)?, pre)
        }
        Algorithm::NaiveThread => {
            let pre = host.capellini_preprocessing_ms(n);
            (kernels::naive::solve(&mut dev, l, b)?, pre)
        }
        Algorithm::Hybrid => {
            // Task planning walks row_ptr once: charge it like a light
            // analysis pass.
            let pre = host.capellini_preprocessing_ms(n) + (n as f64 * 1.2) / 1e6;
            (kernels::hybrid::solve(&mut dev, l, b)?, pre)
        }
        Algorithm::Scheduled => {
            let levels = LevelSets::analyze(l);
            let schedule = capellini_sparse::Schedule::build(
                l,
                &levels,
                capellini_sparse::ScheduleParams::for_warp(config.warp_size),
            );
            let pre = host.scheduled_preprocessing_ms(n, nnz, levels.n_levels());
            let dm = crate::buffers::DeviceCsr::upload(&mut dev, l);
            let sb = crate::buffers::SolveBuffers::upload(&mut dev, b);
            let ds = kernels::scheduled::upload_schedule(&mut dev, &schedule);
            let stats = kernels::scheduled::launch_with_schedule(&mut dev, dm, sb, ds)?;
            (
                kernels::SimSolve {
                    x: sb.read_x(&dev),
                    stats,
                },
                pre,
            )
        }
    };

    let useful_flops = 2 * nnz as u64;
    Ok(SolveReport {
        algorithm,
        exec_ms: sim.stats.time_ms(config),
        gflops: sim.stats.gflops(config, useful_flops),
        bandwidth_gbs: sim.stats.bandwidth_gbs(config),
        x: sim.x,
        stats: sim.stats,
        preprocessing_ms,
        profiles: dev.take_profiles(),
    })
}

/// The outcome of one batched (SpTRSM) solve over `nrhs` right-hand sides.
#[derive(Debug, Clone)]
pub struct MultiSolveReport {
    /// Which algorithm ran.
    pub algorithm: Algorithm,
    /// Number of right-hand sides solved together.
    pub nrhs: usize,
    /// The solution block, row-major `n × nrhs` (`x[i*nrhs + r]`).
    pub x: Vec<f64>,
    /// Raw simulator counters, accumulated over every launch involved.
    pub stats: LaunchStats,
    /// Host-side preprocessing time. Charged once for a batched kernel,
    /// once per column for the looped fallback, and zero on session solves.
    pub preprocessing_ms: f64,
    /// Kernel execution time in milliseconds.
    pub exec_ms: f64,
    /// GFLOPS/s at `2·nnz·nrhs` useful flops.
    pub gflops: f64,
    /// DRAM read+write bandwidth in GB/s.
    pub bandwidth_gbs: f64,
}

/// Solves `L X = B` for `nrhs` right-hand sides packed row-major in `bs`
/// (`bs[i*nrhs + r]`) on a fresh simulated device. The evaluation trio
/// (SyncFree, cuSPARSE-like, Writing-First) runs its dedicated SpTRSM
/// kernel in a single launch; every other algorithm loops `nrhs`
/// single-RHS solves (each paying its preprocessing) and accumulates the
/// statistics. Both paths return `X` bit-identical to column-by-column
/// solving.
///
/// Shape mismatches are recoverable [`SimtError::Launch`] errors. A
/// zero-column block (`nrhs == 0` with an empty `bs`) is *not* an error:
/// it returns an empty solution with zeroed statistics and derived
/// metrics, skipping the device entirely.
pub fn solve_multi_simulated(
    config: &DeviceConfig,
    l: &LowerTriangularCsr,
    bs: &[f64],
    nrhs: usize,
    algorithm: Algorithm,
) -> Result<MultiSolveReport, SimtError> {
    let n = l.n();
    let nnz = l.nnz();
    // Checked multiply: an absurd nrhs must surface as the same structured
    // Launch error as any other shape mismatch, never an overflow panic.
    let expected = n.checked_mul(nrhs).ok_or_else(|| {
        SimtError::Launch(format!(
            "rhs block shape {n} rows x {nrhs} rhs overflows usize"
        ))
    })?;
    if bs.len() != expected {
        return Err(SimtError::Launch(format!(
            "rhs block has {} elements, expected {n} rows x {nrhs} rhs = {expected}",
            bs.len(),
        )));
    }
    if nrhs == 0 {
        // A zero-column block is a well-formed degenerate solve: an empty
        // solution, zeroed counters, zero derived metrics, and no launch —
        // never an error or a division by zero.
        return Ok(MultiSolveReport {
            algorithm,
            nrhs: 0,
            x: Vec::new(),
            stats: LaunchStats::default(),
            preprocessing_ms: 0.0,
            exec_ms: 0.0,
            gflops: 0.0,
            bandwidth_gbs: 0.0,
        });
    }
    let host = HostCostModel::default();
    let (x, stats, preprocessing_ms) = if matches!(
        algorithm,
        Algorithm::SyncFree | Algorithm::CusparseLike | Algorithm::CapelliniWritingFirst
    ) {
        let mut dev = GpuDevice::new(config.clone());
        let (sim, pre) = match algorithm {
            Algorithm::SyncFree => (
                kernels::syncfree_multi::solve_multi(&mut dev, l, bs, nrhs)?,
                host.syncfree_preprocessing_ms(n, nnz),
            ),
            Algorithm::CusparseLike => (
                kernels::cusparse_like_multi::solve_multi(&mut dev, l, bs, nrhs)?,
                host.cusparse_preprocessing_ms(n, nnz),
            ),
            _ => (
                kernels::writing_first_multi::solve_multi(&mut dev, l, bs, nrhs)?,
                host.capellini_preprocessing_ms(n),
            ),
        };
        (sim.x, sim.stats, pre)
    } else {
        let mut x = vec![0.0; n * nrhs];
        let mut stats = LaunchStats::default();
        let mut pre = 0.0;
        let mut col = vec![0.0; n];
        for r in 0..nrhs {
            for i in 0..n {
                col[i] = bs[i * nrhs + r];
            }
            let rep = solve_simulated(config, l, &col, algorithm)?;
            stats.accumulate(&rep.stats);
            pre += rep.preprocessing_ms;
            for (i, &xi) in rep.x.iter().enumerate() {
                x[i * nrhs + r] = xi;
            }
        }
        (x, stats, pre)
    };
    let useful_flops = 2 * nnz as u64 * nrhs as u64;
    Ok(MultiSolveReport {
        algorithm,
        nrhs,
        exec_ms: stats.time_ms(config),
        gflops: stats.gflops(config, useful_flops),
        bandwidth_gbs: stats.bandwidth_gbs(config),
        x,
        stats,
        preprocessing_ms,
    })
}

/// A reusable solver bound to one matrix: computes statistics once,
/// recommends an algorithm, and exposes both simulated-GPU and native-CPU
/// solving.
pub struct Solver {
    l: LowerTriangularCsr,
    stats: MatrixStats,
}

impl Solver {
    /// Wraps a validated lower-triangular system.
    pub fn new(l: LowerTriangularCsr) -> Self {
        let stats = MatrixStats::compute(&l);
        Solver { l, stats }
    }

    /// The underlying matrix.
    pub fn matrix(&self) -> &LowerTriangularCsr {
        &self.l
    }

    /// The matrix statistics (α, β, δ, ...).
    pub fn stats(&self) -> &MatrixStats {
        &self.stats
    }

    /// The recommended GPU algorithm for this matrix (Figure 6 rule).
    pub fn recommend(&self) -> Algorithm {
        recommend(&self.stats)
    }

    /// Solves on a simulated device with the recommended algorithm.
    pub fn solve_simulated(
        &self,
        config: &DeviceConfig,
        b: &[f64],
    ) -> Result<SolveReport, SimtError> {
        solve_simulated(config, &self.l, b, self.recommend())
    }

    /// Solves on a simulated device with an explicit algorithm.
    pub fn solve_simulated_with(
        &self,
        config: &DeviceConfig,
        b: &[f64],
        algorithm: Algorithm,
    ) -> Result<SolveReport, SimtError> {
        solve_simulated(config, &self.l, b, algorithm)
    }

    /// Solves `nrhs` right-hand sides (row-major block) on a simulated
    /// device with the recommended algorithm.
    pub fn solve_multi_simulated(
        &self,
        config: &DeviceConfig,
        bs: &[f64],
        nrhs: usize,
    ) -> Result<MultiSolveReport, SimtError> {
        solve_multi_simulated(config, &self.l, bs, nrhs, self.recommend())
    }

    /// Solves `nrhs` right-hand sides with an explicit algorithm.
    pub fn solve_multi_simulated_with(
        &self,
        config: &DeviceConfig,
        bs: &[f64],
        nrhs: usize,
        algorithm: Algorithm,
    ) -> Result<MultiSolveReport, SimtError> {
        solve_multi_simulated(config, &self.l, bs, nrhs, algorithm)
    }

    /// Opens a [`crate::session::SolverSession`] on this matrix: analysis
    /// runs once, then many solves reuse it (see the session module docs).
    pub fn session(&self, config: &DeviceConfig) -> crate::session::SolverSession {
        crate::session::SolverSession::with_algorithm(config, self.l.clone(), self.recommend())
    }

    /// Solves natively on the CPU with self-scheduled busy-wait threads
    /// (the CPU analog of CapelliniSpTRSV).
    pub fn solve_cpu(&self, b: &[f64], n_threads: usize) -> Vec<f64> {
        crate::cpu::solve_selfsched(&self.l, b, n_threads, crate::cpu::Distribution::Cyclic)
    }

    /// Serial reference solve (Algorithm 1).
    pub fn solve_serial(&self, b: &[f64]) -> Vec<f64> {
        crate::reference::solve_serial_csr(&self.l, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capellini_sparse::gen;
    use capellini_sparse::linalg::assert_solutions_close;

    #[test]
    fn every_live_algorithm_produces_the_same_solution() {
        let l = gen::random_k(600, 3, 600, 41);
        let b: Vec<f64> = (0..600).map(|i| (i % 11) as f64 - 5.0).collect();
        let cfg = DeviceConfig::pascal_like();
        let x_ref = crate::reference::solve_serial_csr(&l, &b);
        for algo in Algorithm::all_live() {
            let rep = solve_simulated(&cfg, &l, &b, algo)
                .unwrap_or_else(|e| panic!("{}: {e}", algo.label()));
            assert_solutions_close(&rep.x, &x_ref, 1e-11);
            assert!(rep.exec_ms > 0.0);
            assert!(rep.gflops > 0.0);
            assert!(rep.preprocessing_ms >= 0.0);
        }
    }

    #[test]
    fn preprocessing_ordering_matches_table1() {
        let l = gen::stencil3d(16, 16, 16, 42);
        let b = vec![1.0; l.n()];
        let cfg = DeviceConfig::volta_like();
        let lv = solve_simulated(&cfg, &l, &b, Algorithm::LevelSet).unwrap();
        let cu = solve_simulated(&cfg, &l, &b, Algorithm::CusparseLike).unwrap();
        let sf = solve_simulated(&cfg, &l, &b, Algorithm::SyncFree).unwrap();
        let wf = solve_simulated(&cfg, &l, &b, Algorithm::CapelliniWritingFirst).unwrap();
        assert!(lv.preprocessing_ms > cu.preprocessing_ms);
        assert!(cu.preprocessing_ms > sf.preprocessing_ms);
        assert!(sf.preprocessing_ms > wf.preprocessing_ms);
    }

    #[test]
    fn solve_multi_matches_looped_single_solves_bitwise() {
        let l = gen::powerlaw(400, 3.0, 44);
        let n = l.n();
        let nrhs = 3;
        let cfg = DeviceConfig::pascal_like();
        let mut bs = vec![0.0; n * nrhs];
        let mut cols: Vec<Vec<f64>> = Vec::new();
        for r in 0..nrhs {
            let b: Vec<f64> = (0..n)
                .map(|i| ((i * (r + 2) + 5) % 17) as f64 - 8.0)
                .collect();
            for i in 0..n {
                bs[i * nrhs + r] = b[i];
            }
            cols.push(b);
        }
        // A batched-kernel algorithm and a looped-fallback algorithm.
        for algo in [Algorithm::SyncFree, Algorithm::CapelliniTwoPhase] {
            let rep = solve_multi_simulated(&cfg, &l, &bs, nrhs, algo).unwrap();
            assert_eq!(rep.nrhs, nrhs);
            assert!(rep.preprocessing_ms > 0.0);
            assert!(rep.exec_ms > 0.0);
            for (r, b) in cols.iter().enumerate() {
                let single = solve_simulated(&cfg, &l, b, algo).unwrap();
                for i in 0..n {
                    assert_eq!(
                        rep.x[i * nrhs + r].to_bits(),
                        single.x[i].to_bits(),
                        "{}: rhs {r} row {i}",
                        algo.label()
                    );
                }
            }
        }
    }

    #[test]
    fn solve_multi_rejects_bad_shapes() {
        let l = gen::diagonal(8);
        let cfg = DeviceConfig::pascal_like();
        let err = solve_multi_simulated(&cfg, &l, &[1.0; 15], 2, Algorithm::SyncFree).unwrap_err();
        assert!(matches!(err, capellini_simt::SimtError::Launch(_)));
        // nrhs == 0 with a *non-empty* block is still a shape mismatch.
        let err = solve_multi_simulated(&cfg, &l, &[1.0; 8], 0, Algorithm::SyncFree).unwrap_err();
        assert!(matches!(err, capellini_simt::SimtError::Launch(_)));
    }

    /// Regression (the nrhs == 0 satellite): a zero-column solve used to be
    /// rejected; it must instead be a well-formed empty success — empty
    /// solution, `LaunchStats::default()` counters, zero derived metrics —
    /// for every live algorithm, batched trio and looped fallback alike.
    #[test]
    fn solve_multi_with_zero_rhs_is_an_empty_success() {
        let l = gen::diagonal(8);
        let cfg = DeviceConfig::pascal_like();
        for algo in Algorithm::all_live() {
            let rep = solve_multi_simulated(&cfg, &l, &[], 0, algo)
                .unwrap_or_else(|e| panic!("{}: {e}", algo.label()));
            assert_eq!(rep.nrhs, 0, "{}", algo.label());
            assert!(rep.x.is_empty(), "{}", algo.label());
            assert_eq!(
                format!("{:?}", rep.stats),
                format!("{:?}", LaunchStats::default()),
                "{}: counters must be zeroed",
                algo.label()
            );
            assert_eq!(rep.exec_ms, 0.0);
            assert_eq!(rep.gflops, 0.0);
            assert_eq!(rep.bandwidth_gbs, 0.0);
            assert_eq!(rep.preprocessing_ms, 0.0);
        }
    }

    /// Regression (validation parity): the cold free function must reject a
    /// wrong-length right-hand side exactly like `SolverSession::solve`
    /// does — a recoverable Launch error, never a panic or a misread — and
    /// the `Solver` wrappers inherit the check.
    #[test]
    fn solve_simulated_rejects_wrong_rhs_length() {
        let l = gen::diagonal(16);
        let cfg = DeviceConfig::pascal_like();
        for algo in Algorithm::all_live() {
            for bad in [0usize, 7, 17] {
                let err = solve_simulated(&cfg, &l, &vec![1.0; bad], algo).unwrap_err();
                assert!(
                    matches!(err, capellini_simt::SimtError::Launch(_)),
                    "{}: rhs length {bad} must be a Launch error",
                    algo.label()
                );
                assert!(
                    err.to_string().contains(&bad.to_string()),
                    "{}: message names the bad length: {err}",
                    algo.label()
                );
            }
        }
        let solver = Solver::new(l);
        let err = solver.solve_simulated(&cfg, &[1.0; 3]).unwrap_err();
        assert!(matches!(err, capellini_simt::SimtError::Launch(_)));
        let err = solver
            .solve_simulated_with(&cfg, &[1.0; 3], Algorithm::LevelSet)
            .unwrap_err();
        assert!(matches!(err, capellini_simt::SimtError::Launch(_)));
    }

    /// Regression: an nrhs so large that `n * nrhs` overflows usize must be
    /// the structured Launch error, not an arithmetic panic.
    #[test]
    fn solve_multi_overflowing_nrhs_is_a_launch_error() {
        let l = gen::diagonal(8);
        let cfg = DeviceConfig::pascal_like();
        let err = solve_multi_simulated(&cfg, &l, &[1.0; 8], usize::MAX, Algorithm::SyncFree)
            .unwrap_err();
        assert!(matches!(err, capellini_simt::SimtError::Launch(_)));
        assert!(err.to_string().contains("overflows"));
        let solver = Solver::new(l);
        let err = solver
            .solve_multi_simulated(&cfg, &[1.0; 8], usize::MAX / 2)
            .unwrap_err();
        assert!(matches!(err, capellini_simt::SimtError::Launch(_)));
    }

    /// The engine-threads knob must be *performance-only*: the same solve
    /// through the facade with a clustered engine returns a bit-identical
    /// report (solution, counters, derived metrics) at every thread count.
    #[test]
    fn engine_threads_is_bit_transparent_through_the_facade() {
        let l = gen::random_k(500, 3, 500, 46);
        let b: Vec<f64> = (0..500).map(|i| (i % 13) as f64 - 6.0).collect();
        let serial_cfg = DeviceConfig::pascal_like().scaled_down(4);
        for algo in [Algorithm::SyncFree, Algorithm::CapelliniWritingFirst] {
            let serial = solve_simulated(&serial_cfg, &l, &b, algo).unwrap();
            for threads in [2, 4, 8] {
                let cfg = serial_cfg.clone().with_engine_threads(threads);
                let clustered = solve_simulated(&cfg, &l, &b, algo).unwrap();
                assert_eq!(
                    format!("{:?}", clustered.stats),
                    format!("{:?}", serial.stats),
                    "{}: stats diverge at {threads} engine threads",
                    algo.label()
                );
                for (i, (c, s)) in clustered.x.iter().zip(&serial.x).enumerate() {
                    assert_eq!(
                        c.to_bits(),
                        s.to_bits(),
                        "{}: x[{i}] diverges at {threads} engine threads",
                        algo.label()
                    );
                }
                assert_eq!(clustered.exec_ms, serial.exec_ms);
                assert_eq!(clustered.gflops, serial.gflops);
            }
        }
    }

    #[test]
    fn solver_facade_recommends_and_solves() {
        let l = gen::ultra_sparse_wide(3000, 8, 1, 43);
        let solver = Solver::new(l);
        assert_eq!(solver.recommend(), Algorithm::CapelliniWritingFirst);
        let b = vec![1.0; solver.matrix().n()];
        let x_ref = solver.solve_serial(&b);
        let rep = solver
            .solve_simulated(&DeviceConfig::turing_like(), &b)
            .unwrap();
        assert_solutions_close(&rep.x, &x_ref, 1e-11);
        let x_cpu = solver.solve_cpu(&b, 4);
        assert_solutions_close(&x_cpu, &x_ref, 1e-11);
    }
}
