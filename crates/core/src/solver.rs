//! The high-level solve API: dispatches any [`Algorithm`] onto a simulated
//! device, accounts host-side preprocessing, and derives the
//! paper's reporting metrics (GFLOPS, bandwidth, instructions, stalls).

use capellini_simt::{DeviceConfig, GpuDevice, HostCostModel, LaunchStats, Profile, SimtError};
use capellini_sparse::{LevelSets, LowerTriangularCsr, MatrixStats};

use crate::kernels;
use crate::select::{recommend, Algorithm};

/// The outcome of one simulated solve, carrying everything the paper's
/// tables report about a (matrix, algorithm, platform) cell.
#[derive(Debug, Clone)]
pub struct SolveReport {
    /// Which algorithm ran.
    pub algorithm: Algorithm,
    /// The solution vector.
    pub x: Vec<f64>,
    /// Raw simulator counters.
    pub stats: LaunchStats,
    /// Host-side preprocessing time (Table 1's first row group).
    pub preprocessing_ms: f64,
    /// Kernel execution time in milliseconds.
    pub exec_ms: f64,
    /// GFLOPS/s at the paper's 2·nnz flop convention.
    pub gflops: f64,
    /// DRAM read+write bandwidth in GB/s (Figure 7).
    pub bandwidth_gbs: f64,
    /// Per-launch profiles, in launch order — empty unless the device
    /// config armed profiling (`DeviceConfig::with_profile`). Multi-launch
    /// algorithms (Level-Set) produce one profile per level launch.
    pub profiles: Vec<Profile>,
}

/// Runs `algorithm` on a fresh simulated device of the given configuration.
pub fn solve_simulated(
    config: &DeviceConfig,
    l: &LowerTriangularCsr,
    b: &[f64],
    algorithm: Algorithm,
) -> Result<SolveReport, SimtError> {
    let mut dev = GpuDevice::new(config.clone());
    let host = HostCostModel::default();
    let n = l.n();
    let nnz = l.nnz();

    let (sim, preprocessing_ms) = match algorithm {
        Algorithm::LevelSet => {
            let levels = LevelSets::analyze(l);
            let pre = host.levelset_preprocessing_ms(n, nnz, levels.n_levels());
            let dm = crate::buffers::DeviceCsr::upload(&mut dev, l);
            let sb = crate::buffers::SolveBuffers::upload(&mut dev, b);
            let stats = kernels::levelset::launch_with_levels(&mut dev, dm, sb, &levels)?;
            (
                kernels::SimSolve {
                    x: sb.read_x(&dev),
                    stats,
                },
                pre,
            )
        }
        Algorithm::SyncFree => {
            let pre = host.syncfree_preprocessing_ms(n, nnz);
            (kernels::syncfree::solve(&mut dev, l, b)?, pre)
        }
        Algorithm::SyncFreeCsc => {
            // CSC conversion plus the in-degree sweep (one pass over n rows).
            let pre = host.syncfree_preprocessing_ms(n, nnz) + (n as f64 * 0.3) / 1e6;
            (kernels::syncfree_csc::solve(&mut dev, l, b)?, pre)
        }
        Algorithm::CusparseLike => {
            let pre = host.cusparse_preprocessing_ms(n, nnz);
            (kernels::cusparse_like::solve(&mut dev, l, b)?, pre)
        }
        Algorithm::CapelliniTwoPhase => {
            let pre = host.capellini_preprocessing_ms(n);
            (kernels::two_phase::solve(&mut dev, l, b)?, pre)
        }
        Algorithm::CapelliniWritingFirst => {
            let pre = host.capellini_preprocessing_ms(n);
            (kernels::writing_first::solve(&mut dev, l, b)?, pre)
        }
        Algorithm::NaiveThread => {
            let pre = host.capellini_preprocessing_ms(n);
            (kernels::naive::solve(&mut dev, l, b)?, pre)
        }
        Algorithm::Hybrid => {
            // Task planning walks row_ptr once: charge it like a light
            // analysis pass.
            let pre = host.capellini_preprocessing_ms(n) + (n as f64 * 1.2) / 1e6;
            (kernels::hybrid::solve(&mut dev, l, b)?, pre)
        }
    };

    let useful_flops = 2 * nnz as u64;
    Ok(SolveReport {
        algorithm,
        exec_ms: sim.stats.time_ms(config),
        gflops: sim.stats.gflops(config, useful_flops),
        bandwidth_gbs: sim.stats.bandwidth_gbs(config),
        x: sim.x,
        stats: sim.stats,
        preprocessing_ms,
        profiles: dev.take_profiles(),
    })
}

/// A reusable solver bound to one matrix: computes statistics once,
/// recommends an algorithm, and exposes both simulated-GPU and native-CPU
/// solving.
pub struct Solver {
    l: LowerTriangularCsr,
    stats: MatrixStats,
}

impl Solver {
    /// Wraps a validated lower-triangular system.
    pub fn new(l: LowerTriangularCsr) -> Self {
        let stats = MatrixStats::compute(&l);
        Solver { l, stats }
    }

    /// The underlying matrix.
    pub fn matrix(&self) -> &LowerTriangularCsr {
        &self.l
    }

    /// The matrix statistics (α, β, δ, ...).
    pub fn stats(&self) -> &MatrixStats {
        &self.stats
    }

    /// The recommended GPU algorithm for this matrix (Figure 6 rule).
    pub fn recommend(&self) -> Algorithm {
        recommend(&self.stats)
    }

    /// Solves on a simulated device with the recommended algorithm.
    pub fn solve_simulated(
        &self,
        config: &DeviceConfig,
        b: &[f64],
    ) -> Result<SolveReport, SimtError> {
        solve_simulated(config, &self.l, b, self.recommend())
    }

    /// Solves on a simulated device with an explicit algorithm.
    pub fn solve_simulated_with(
        &self,
        config: &DeviceConfig,
        b: &[f64],
        algorithm: Algorithm,
    ) -> Result<SolveReport, SimtError> {
        solve_simulated(config, &self.l, b, algorithm)
    }

    /// Solves natively on the CPU with self-scheduled busy-wait threads
    /// (the CPU analog of CapelliniSpTRSV).
    pub fn solve_cpu(&self, b: &[f64], n_threads: usize) -> Vec<f64> {
        crate::cpu::solve_selfsched(&self.l, b, n_threads, crate::cpu::Distribution::Cyclic)
    }

    /// Serial reference solve (Algorithm 1).
    pub fn solve_serial(&self, b: &[f64]) -> Vec<f64> {
        crate::reference::solve_serial_csr(&self.l, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capellini_sparse::gen;
    use capellini_sparse::linalg::assert_solutions_close;

    #[test]
    fn every_live_algorithm_produces_the_same_solution() {
        let l = gen::random_k(600, 3, 600, 41);
        let b: Vec<f64> = (0..600).map(|i| (i % 11) as f64 - 5.0).collect();
        let cfg = DeviceConfig::pascal_like();
        let x_ref = crate::reference::solve_serial_csr(&l, &b);
        for algo in Algorithm::all_live() {
            let rep = solve_simulated(&cfg, &l, &b, algo)
                .unwrap_or_else(|e| panic!("{}: {e}", algo.label()));
            assert_solutions_close(&rep.x, &x_ref, 1e-11);
            assert!(rep.exec_ms > 0.0);
            assert!(rep.gflops > 0.0);
            assert!(rep.preprocessing_ms >= 0.0);
        }
    }

    #[test]
    fn preprocessing_ordering_matches_table1() {
        let l = gen::stencil3d(16, 16, 16, 42);
        let b = vec![1.0; l.n()];
        let cfg = DeviceConfig::volta_like();
        let lv = solve_simulated(&cfg, &l, &b, Algorithm::LevelSet).unwrap();
        let cu = solve_simulated(&cfg, &l, &b, Algorithm::CusparseLike).unwrap();
        let sf = solve_simulated(&cfg, &l, &b, Algorithm::SyncFree).unwrap();
        let wf = solve_simulated(&cfg, &l, &b, Algorithm::CapelliniWritingFirst).unwrap();
        assert!(lv.preprocessing_ms > cu.preprocessing_ms);
        assert!(cu.preprocessing_ms > sf.preprocessing_ms);
        assert!(sf.preprocessing_ms > wf.preprocessing_ms);
    }

    #[test]
    fn solver_facade_recommends_and_solves() {
        let l = gen::ultra_sparse_wide(3000, 8, 1, 43);
        let solver = Solver::new(l);
        assert_eq!(solver.recommend(), Algorithm::CapelliniWritingFirst);
        let b = vec![1.0; solver.matrix().n()];
        let x_ref = solver.solve_serial(&b);
        let rep = solver
            .solve_simulated(&DeviceConfig::turing_like(), &b)
            .unwrap();
        assert_solutions_close(&rep.x, &x_ref, 1e-11);
        let x_cpu = solver.solve_cpu(&b, 4);
        assert_solutions_close(&x_cpu, &x_ref, 1e-11);
    }
}
