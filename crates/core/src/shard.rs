//! Sharded multi-device SpTRSV (DESIGN.md §15).
//!
//! [`solve_sharded`] partitions a triangular system across up to
//! [`MAX_DEVICES`](capellini_simt::multidev::MAX_DEVICES) simulated devices
//! by contiguous, nnz-balanced row blocks ([`RowPartition`]) and
//! co-simulates them exactly on a common t = 0 timeline. Because rows only
//! depend on earlier rows and cuts are warp-aligned, dependencies flow
//! strictly from lower shards to higher ones, so the coordinator runs the
//! devices in shard order:
//!
//! 1. each producer runs with a publication watch armed on its boundary
//!    buffers, capturing the tick at which every boundary `x` value /
//!    completion flag / atomic delta became DRAM-visible;
//! 2. each publication a downstream shard imports is pushed through the
//!    directed [`Link`] between the two devices (latency floor + bandwidth
//!    token bucket), yielding its arrival tick on the consumer;
//! 3. the consumer launches with the arrivals pre-scheduled as external
//!    events: each writes the consumer's device-local mirror word at its
//!    arrival tick and wakes any warp parked on it, so the single-device
//!    waiter/wake machinery works unchanged across device boundaries.
//!
//! Per-algorithm sharding (each preserves the exact per-row arithmetic of
//! the single-device kernel, so `x` is bit-identical for every CSR-ordered
//! kernel; the CSC scatter formulation reorders atomic adds and is compared
//! within tolerance instead):
//!
//! * thread-per-row kernels (Writing-First, Two-Phase, Naive) and
//!   warp-per-row kernels (SyncFree, cuSPARSE-like) run behind a
//!   [`ShardView`] that offsets global thread ids by the shard base and
//!   exits out-of-shard lanes at launch;
//! * Hybrid filters the *global* task plan down to the shard's rows (blocks
//!   never span warp-aligned cuts, so per-row granularity is preserved);
//! * Scheduled builds its schedule on a ghost-padded shard matrix
//!   ([`GhostShard`]), then strips the ghost rows back out of the unit
//!   lists; each import gets a fresh per-unit flag slot that the link event
//!   sets on arrival;
//! * Level-Set is host-mediated: producers finish before consumers start,
//!   so imported `x` values are written before the per-level launch loop
//!   and the link cost is folded into the makespan analytically (one
//!   exchange window per level);
//! * SyncFree-CSC forwards the boundary *scatter deltas* (`atomicAdd
//!   left_sum`, `atomicSub in_degree`) instead of finished values — deltas,
//!   not totals, so each consumer's accumulation order is preserved.
//!
//! When shards fail (an injected cross-device cycle), the coordinator keeps
//! running downstream shards — their missing boundary inputs surface the
//! stall there too — and merges everything into *one* structured
//! [`SimtError::Deadlock`] whose warp snapshots are device-tagged
//! ([`merge_deadlock`]).

use std::collections::BTreeMap;

use capellini_simt::{
    merge_deadlock, DeviceConfig, Effect, ExtEvent, ExtOp, GpuDevice, LaneMem, LaunchStats, Link,
    LinkConfig, Pc, PubRecord, SimtError, WarpKernel,
};
use capellini_sparse::{
    GhostShard, LevelSets, LowerTriangularCsr, RowPartition, Schedule, ScheduleParams,
};

use crate::buffers::{DeviceCsr, SolveBuffers};
use crate::kernels::cusparse_like::CusparseLikeKernel;
use crate::kernels::cusparse_like_multi::build_info;
use crate::kernels::hybrid::{self, HybridKernel, Task};
use crate::kernels::levelset::LevelSolveKernel;
use crate::kernels::naive::NaiveThreadKernel;
use crate::kernels::scheduled::{DeviceSchedule, ScheduledKernel};
use crate::kernels::syncfree::SyncFreeKernel;
use crate::kernels::syncfree_csc::{self, SyncFreeCscKernel};
use crate::kernels::two_phase::TwoPhaseKernel;
use crate::kernels::writing_first::WritingFirstKernel;
use crate::select::Algorithm;

/// Payload bytes per boundary message: the 8-byte value plus the row index
/// and a routing header (what a real peer-to-peer copy descriptor costs).
pub const MSG_BYTES: u64 = 16;

/// Sharding parameters: device count plus the inter-device link model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardConfig {
    /// Number of devices (1..=[`capellini_simt::multidev::MAX_DEVICES`]).
    pub devices: usize,
    /// Inter-device link parameters.
    pub link: LinkConfig,
}

impl ShardConfig {
    /// `devices` shards over a PCIe-class interconnect.
    pub fn pcie(devices: usize) -> Self {
        ShardConfig {
            devices,
            link: LinkConfig::pcie_like(),
        }
    }

    /// `devices` shards over an NVLink-class interconnect.
    pub fn nvlink(devices: usize) -> Self {
        ShardConfig {
            devices,
            link: LinkConfig::nvlink_like(),
        }
    }

    /// Rejects non-physical configurations.
    pub fn validate(&self) -> Result<(), SimtError> {
        if self.devices == 0 || self.devices > capellini_simt::multidev::MAX_DEVICES {
            return Err(SimtError::Config(format!(
                "device count must be 1..={}, got {}",
                capellini_simt::multidev::MAX_DEVICES,
                self.devices
            )));
        }
        self.link.validate()
    }
}

/// Outcome of a sharded solve: the assembled solution, per-device launch
/// statistics, and the link traffic the boundary exchange generated.
#[derive(Debug)]
pub struct ShardedReport {
    /// The algorithm that ran on every shard.
    pub algorithm: Algorithm,
    /// The row partition the solve used.
    pub partition: RowPartition,
    /// Assembled solution (each shard contributes its owned rows).
    pub x: Vec<f64>,
    /// Per-device accumulated launch statistics (zero for zero-row shards).
    pub per_device: Vec<LaunchStats>,
    /// End-to-end cycles: all devices start at t = 0, so this is the max
    /// per-device end cycle (Level-Set adds the per-level exchange windows).
    pub makespan_cycles: u64,
    /// Boundary messages moved over all links.
    pub link_messages: u64,
    /// Boundary payload bytes moved over all links.
    pub link_bytes: u64,
}

impl ShardedReport {
    /// Makespan in milliseconds under `config`'s clock.
    pub fn makespan_ms(&self, config: &DeviceConfig) -> f64 {
        LaunchStats {
            cycles: self.makespan_cycles,
            ..LaunchStats::default()
        }
        .time_ms(config)
    }
}

/// Restricts a global-id kernel to one shard's contiguous id range: thread
/// ids are offset by `base` (so lane state, warp grouping and shared-memory
/// layout match the unsharded launch exactly — `base` is always a multiple
/// of the warp size) and ids at or beyond `limit` exit at the first
/// instruction, exactly like the kernels' own `i >= n` tail check.
pub(crate) struct ShardView<K: WarpKernel> {
    inner: K,
    base: u32,
    limit: u32,
}

impl<K: WarpKernel> ShardView<K> {
    pub(crate) fn new(inner: K, base: u32, limit: u32) -> Self {
        ShardView { inner, base, limit }
    }
}

impl<K: WarpKernel> WarpKernel for ShardView<K> {
    type Lane = K::Lane;

    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn shared_per_warp(&self) -> usize {
        self.inner.shared_per_warp()
    }

    fn make_lane(&self, tid: u32) -> K::Lane {
        self.inner.make_lane(tid + self.base)
    }

    fn exec(&self, pc: Pc, lane: &mut K::Lane, tid: u32, mem: &mut LaneMem<'_>) -> Effect {
        let gtid = tid + self.base;
        if pc == 0 && gtid >= self.limit {
            return Effect::exit();
        }
        self.inner.exec(pc, lane, gtid, mem)
    }

    fn reconv(&self, pc: Pc) -> Pc {
        self.inner.reconv(pc)
    }

    fn branch_order(&self, pc: Pc, target: Pc) -> u8 {
        self.inner.branch_order(pc, target)
    }

    fn pc_name(&self, pc: Pc) -> &'static str {
        self.inner.pc_name(pc)
    }

    fn spin_pure(&self, pc: Pc) -> bool {
        self.inner.spin_pure(pc)
    }
}

/// The per-link state of one coordinator run, plus traffic totals.
struct Links {
    cfg: LinkConfig,
    tpc: u64,
    map: BTreeMap<(usize, usize), Link>,
}

impl Links {
    fn new(cfg: LinkConfig, tpc: u64) -> Self {
        Links {
            cfg,
            tpc,
            map: BTreeMap::new(),
        }
    }

    fn transfer(&mut self, producer: usize, consumer: usize, ready: u64) -> u64 {
        let cfg = self.cfg;
        let tpc = self.tpc;
        self.map
            .entry((producer, consumer))
            .or_insert_with(|| Link::new(&cfg, tpc))
            .transfer(ready, MSG_BYTES)
    }

    fn totals(&self) -> (u64, u64) {
        self.map
            .values()
            .fold((0, 0), |(m, b), l| (m + l.messages(), b + l.total_bytes()))
    }
}

/// Per-export-row publication: visibility tick on the producer's timeline
/// plus the published value.
type PubMap = BTreeMap<u32, (u64, f64)>;

/// Extracts, for every exported row, the tick at which *both* its `x` value
/// and its covering completion flag were DRAM-visible on the producer. The
/// flag index is algorithm-specific (`flag_of` maps a global row to it).
fn export_readiness(
    recs: &[PubRecord],
    x_raw: u32,
    flags_raw: u32,
    exports: &[u32],
    row_of_x: impl Fn(u32) -> Option<u32>,
    flag_of: impl Fn(u32) -> u32,
) -> PubMap {
    let mut x_seen: BTreeMap<u32, (u64, f64)> = BTreeMap::new();
    let mut f_seen: BTreeMap<u32, u64> = BTreeMap::new();
    for r in recs {
        if r.buf == x_raw {
            if let ExtOp::StoreF64(v) = r.op {
                if let Some(row) = row_of_x(r.idx) {
                    let e = x_seen.entry(row).or_insert((0, v));
                    e.0 = e.0.max(r.tick);
                    e.1 = v;
                }
            }
        } else if r.buf == flags_raw {
            let e = f_seen.entry(r.idx).or_insert(0);
            *e = (*e).max(r.tick);
        }
    }
    let mut out = PubMap::new();
    for &row in exports {
        let &(tx, v) = x_seen
            .get(&row)
            .expect("every exported row publishes its x value");
        let tf = *f_seen
            .get(&flag_of(row))
            .expect("every exported row publishes a covering flag");
        out.insert(row, (tx.max(tf), v));
    }
    out
}

/// Turns a producer's readiness map into the consumer's external events:
/// one `x` store plus one flag store per imported row, both at the link
/// arrival tick (the value is applied before the flag that announces it).
#[allow(clippy::too_many_arguments)]
fn import_events(
    links: &mut Links,
    producer: usize,
    consumer: usize,
    pubs: &PubMap,
    rows: &[u32],
    x_raw: u32,
    flags_raw: u32,
    x_idx_of: impl Fn(u32) -> u32,
    flag_idx_of: impl Fn(u32) -> u32,
    events: &mut Vec<ExtEvent>,
) {
    let mut items: Vec<(u64, u32, f64)> = rows
        .iter()
        .map(|&r| {
            let &(ready, v) = pubs.get(&r).expect("producer published every export");
            (ready, r, v)
        })
        .collect();
    items.sort_unstable_by_key(|&(ready, r, _)| (ready, r));
    for (ready, r, v) in items {
        let arrival = links.transfer(producer, consumer, ready);
        events.push(ExtEvent {
            tick: arrival,
            buf: x_raw,
            idx: x_idx_of(r),
            op: ExtOp::StoreF64(v),
        });
        events.push(ExtEvent {
            tick: arrival,
            buf: flags_raw,
            idx: flag_idx_of(r),
            op: ExtOp::StoreFlag(true),
        });
    }
}

/// Runs `algorithm` sharded across `shard.devices` simulated devices.
///
/// The returned solution is bit-identical to the single-device
/// [`crate::solver::solve_simulated`] result for every CSR-ordered kernel
/// (all live algorithms except [`Algorithm::SyncFreeCsc`], whose atomic
/// scatter order legitimately differs across partitions).
pub fn solve_sharded(
    config: &DeviceConfig,
    l: &LowerTriangularCsr,
    b: &[f64],
    algorithm: Algorithm,
    shard: &ShardConfig,
) -> Result<ShardedReport, SimtError> {
    shard.validate()?;
    let part = RowPartition::build(l, shard.devices, config.warp_size);
    solve_sharded_with_partition(config, l, b, algorithm, shard, part)
}

/// [`solve_sharded`] against a prebuilt partition — the session path, which
/// caches partitions per device count and reuses them across solves. The
/// partition must have been built on `l` with the device's warp size.
pub fn solve_sharded_with_partition(
    config: &DeviceConfig,
    l: &LowerTriangularCsr,
    b: &[f64],
    algorithm: Algorithm,
    shard: &ShardConfig,
    part: RowPartition,
) -> Result<ShardedReport, SimtError> {
    assert_eq!(b.len(), l.n(), "rhs length must equal matrix dimension");
    shard.validate()?;
    let tpc = config.schedulers_per_sm.max(1) as u64;
    let mut links = Links::new(shard.link, tpc);
    match algorithm {
        Algorithm::LevelSet => solve_levelset(config, l, b, &part, &mut links),
        Algorithm::SyncFreeCsc => solve_csc(config, l, b, &part, &mut links),
        Algorithm::Scheduled => solve_scheduled(config, l, b, &part, &mut links),
        _ => solve_row_kernels(config, l, b, algorithm, &part, &mut links),
    }
    .map(|(x, per_device, makespan_cycles)| {
        let (link_messages, link_bytes) = links.totals();
        ShardedReport {
            algorithm,
            partition: part,
            x,
            per_device,
            makespan_cycles,
            link_messages,
            link_bytes,
        }
    })
}

type ShardRun = (Vec<f64>, Vec<LaunchStats>, u64);

/// Collects a run's failures into one device-tagged error, or reports the
/// per-device outcome totals.
fn finish(
    failures: Vec<(usize, SimtError)>,
    x: Vec<f64>,
    per_device: Vec<LaunchStats>,
) -> Result<ShardRun, SimtError> {
    if failures.is_empty() {
        let makespan = per_device.iter().map(|s| s.cycles).max().unwrap_or(0);
        Ok((x, per_device, makespan))
    } else {
        Err(merge_deadlock(failures))
    }
}

/// Sharded driver for every kernel that indexes `x`/`flags` by global row:
/// the thread-per-row family, the warp-per-row family, and Hybrid.
fn solve_row_kernels(
    config: &DeviceConfig,
    l: &LowerTriangularCsr,
    b: &[f64],
    algorithm: Algorithm,
    part: &RowPartition,
    links: &mut Links,
) -> Result<ShardRun, SimtError> {
    let n = l.n();
    let ws = config.warp_size;
    let devices = part.devices();
    let mut x = vec![0.0f64; n];
    let mut per_device = vec![LaunchStats::default(); devices];
    let mut failures: Vec<(usize, SimtError)> = Vec::new();
    let mut pubs: Vec<PubMap> = vec![PubMap::new(); devices];

    for d in 0..devices {
        let (r0, r1) = part.range(d);
        if r1 == r0 {
            continue;
        }
        let mut dev = GpuDevice::new(config.clone());
        let m = DeviceCsr::upload(&mut dev, l);
        let sb = SolveBuffers::upload(&mut dev, b);
        let mut events: Vec<ExtEvent> = Vec::new();
        for (p, from) in pubs.iter().enumerate().take(d) {
            let rows = part.imports_from(d, p);
            if rows.is_empty() {
                continue;
            }
            if from.is_empty() {
                // The producer failed; launch without its inputs so the
                // stall surfaces here too and merges into one deadlock.
                continue;
            }
            import_events(
                links,
                p,
                d,
                from,
                rows,
                sb.x.raw(),
                sb.flags.raw(),
                |r| r,
                |r| r,
                &mut events,
            );
        }
        events.sort_by_key(|e| e.tick);
        dev.mem().set_watch(&[sb.x.raw(), sb.flags.raw()]);
        let res = match algorithm {
            Algorithm::CapelliniWritingFirst => dev.launch_with_events(
                &ShardView::new(WritingFirstKernel::new(m, sb), r0, r1),
                ((r1 - r0) as usize).div_ceil(ws),
                &events,
            ),
            Algorithm::CapelliniTwoPhase => dev.launch_with_events(
                &ShardView::new(TwoPhaseKernel::new(m, sb, ws), r0, r1),
                ((r1 - r0) as usize).div_ceil(ws),
                &events,
            ),
            Algorithm::NaiveThread => dev.launch_with_events(
                &ShardView::new(NaiveThreadKernel::new(m, sb), r0, r1),
                ((r1 - r0) as usize).div_ceil(ws),
                &events,
            ),
            Algorithm::SyncFree => dev.launch_with_events(
                &ShardView::new(
                    SyncFreeKernel::new(m, sb, ws),
                    r0 * ws as u32,
                    r1 * ws as u32,
                ),
                (r1 - r0) as usize,
                &events,
            ),
            Algorithm::CusparseLike => {
                let info = build_info(&mut dev, m);
                dev.launch_with_events(
                    &ShardView::new(
                        CusparseLikeKernel::new(m, sb, info, ws),
                        r0 * ws as u32,
                        r1 * ws as u32,
                    ),
                    (r1 - r0) as usize,
                    &events,
                )
            }
            Algorithm::Hybrid => {
                let local: Vec<Task> = hybrid::plan_tasks(l, ws, hybrid::DEFAULT_THRESHOLD)
                    .into_iter()
                    .filter(|t| match *t {
                        Task::ThreadBlock { base } => base >= r0 && base < r1,
                        Task::WarpRow { row } => row >= r0 && row < r1,
                    })
                    .collect();
                let tasks = hybrid::upload_task_list(&mut dev, &local);
                dev.launch_with_events(&HybridKernel::new(m, sb, tasks, ws), local.len(), &events)
            }
            Algorithm::LevelSet | Algorithm::SyncFreeCsc | Algorithm::Scheduled => {
                unreachable!("handled by dedicated drivers")
            }
        };
        match res {
            Ok(stats) => {
                let recs = dev.mem().take_watch();
                pubs[d] = export_readiness(
                    &recs,
                    sb.x.raw(),
                    sb.flags.raw(),
                    part.exports(d),
                    Some,
                    |r| r,
                );
                let xs = dev.mem_ref().read_f64(sb.x);
                x[r0 as usize..r1 as usize].copy_from_slice(&xs[r0 as usize..r1 as usize]);
                per_device[d] = stats;
            }
            Err(e) => failures.push((d, e)),
        }
    }
    finish(failures, x, per_device)
}

/// Sharded Scheduled driver: each shard gets a ghost-padded matrix, builds
/// its own schedule on it, then strips the ghost rows back out of the unit
/// lists so no warp recomputes an import. Every import gets a fresh flag
/// slot after the real units; the link event stores `x` then sets it.
fn solve_scheduled(
    config: &DeviceConfig,
    l: &LowerTriangularCsr,
    b: &[f64],
    part: &RowPartition,
    links: &mut Links,
) -> Result<ShardRun, SimtError> {
    let ws = config.warp_size;
    let devices = part.devices();
    let mut x = vec![0.0f64; l.n()];
    let mut per_device = vec![LaunchStats::default(); devices];
    let mut failures: Vec<(usize, SimtError)> = Vec::new();
    let mut pubs: Vec<PubMap> = vec![PubMap::new(); devices];

    for d in 0..devices {
        let (r0, r1) = part.range(d);
        if r1 == r0 {
            continue;
        }
        let gs = GhostShard::build(l, part, d);
        let n_ghost = gs.n_ghost;
        let glt = LowerTriangularCsr::try_new(gs.matrix.clone())
            .expect("ghost padding preserves lower-triangularity");
        let glevels = LevelSets::analyze(&glt);
        let sched = Schedule::build(&glt, &glevels, ScheduleParams::for_warp(ws));

        // Strip ghost rows out of the unit row lists, drop units left
        // empty, and renumber compactly. Unit kinds survive verbatim (the
        // kernel's dependent-parallel stride is re-derived at run time from
        // the staged rows, so a shorter unit stays well-formed); a ghost
        // dependency simply becomes a cross-unit poll of its fresh slot.
        let old_desc = sched.encode_desc();
        let rows_arr = sched.rows();
        let mut units: Vec<(u32, Vec<u32>)> = Vec::new();
        for u in 0..sched.n_units() {
            let start = (old_desc[u] >> 2) as usize;
            let end = (old_desc[u + 1] >> 2) as usize;
            let kind = old_desc[u] & 3;
            let kept: Vec<u32> = rows_arr[start..end]
                .iter()
                .copied()
                .filter(|&r| (r as usize) >= n_ghost)
                .collect();
            if !kept.is_empty() {
                units.push((kind, kept));
            }
        }
        let n_units = units.len();
        let n_pad = glt.n();
        let mut new_rows: Vec<u32> = Vec::with_capacity(n_pad - n_ghost);
        let mut new_desc: Vec<u32> = Vec::with_capacity(n_units + 1);
        let mut unit_of = vec![0u32; n_pad];
        for (uid, (kind, kept)) in units.iter().enumerate() {
            new_desc.push(((new_rows.len() as u32) << 2) | kind);
            for &r in kept {
                unit_of[r as usize] = uid as u32;
                new_rows.push(r);
            }
        }
        new_desc.push((new_rows.len() as u32) << 2);
        for (g, slot) in unit_of.iter_mut().enumerate().take(n_ghost) {
            *slot = (n_units + g) as u32;
        }

        let mut dev = GpuDevice::new(config.clone());
        let m = DeviceCsr::upload(&mut dev, &glt);
        let mut b_pad = vec![0.0f64; n_pad];
        b_pad[n_ghost..].copy_from_slice(&b[r0 as usize..r1 as usize]);
        let sb = SolveBuffers::upload(&mut dev, &b_pad);
        let ds = DeviceSchedule {
            rows: dev.mem().alloc_u32(&new_rows),
            desc: dev.mem().alloc_u32(&new_desc),
            unit_of: dev.mem().alloc_u32(&unit_of),
            n_units,
        };

        let ghosts = gs.global_of[..n_ghost].to_vec();
        let local_of = |r: u32| -> u32 {
            ghosts
                .binary_search(&r)
                .expect("every import is a ghost row") as u32
        };
        let mut events: Vec<ExtEvent> = Vec::new();
        for (p, from) in pubs.iter().enumerate().take(d) {
            let rows = part.imports_from(d, p);
            if rows.is_empty() || from.is_empty() {
                continue;
            }
            import_events(
                links,
                p,
                d,
                from,
                rows,
                sb.x.raw(),
                sb.flags.raw(),
                local_of,
                |r| n_units as u32 + local_of(r),
                &mut events,
            );
        }
        events.sort_by_key(|e| e.tick);
        dev.mem().set_watch(&[sb.x.raw(), sb.flags.raw()]);
        match dev.launch_with_events(&ScheduledKernel::new(m, sb, ds, ws), n_units, &events) {
            Ok(stats) => {
                let recs = dev.mem().take_watch();
                pubs[d] = export_readiness(
                    &recs,
                    sb.x.raw(),
                    sb.flags.raw(),
                    part.exports(d),
                    |idx| {
                        // Padded x index → global row (owned rows only).
                        ((idx as usize) >= n_ghost).then(|| r0 + (idx - n_ghost as u32))
                    },
                    |r| unit_of[n_ghost + (r - r0) as usize],
                );
                let xs = dev.mem_ref().read_f64(sb.x);
                x[r0 as usize..r1 as usize].copy_from_slice(&xs[n_ghost..n_pad]);
                per_device[d] = stats;
            }
            Err(e) => failures.push((d, e)),
        }
    }
    finish(failures, x, per_device)
}

/// Sharded Level-Set driver. Levels are global launch barriers, so the
/// exchange is host-mediated: producers fully precede consumers in the
/// shard order, imported `x` values are written before the consumer's
/// launch loop, and the link cost is folded into the makespan as one
/// exchange window per level (max per-device level time, then every
/// boundary row of that level crosses its link before the next level).
fn solve_levelset(
    config: &DeviceConfig,
    l: &LowerTriangularCsr,
    b: &[f64],
    part: &RowPartition,
    links: &mut Links,
) -> Result<ShardRun, SimtError> {
    let n = l.n();
    let ws = config.warp_size;
    let tpc = config.schedulers_per_sm.max(1) as u64;
    let devices = part.devices();
    let levels = LevelSets::analyze(l);
    let n_levels = levels.n_levels();
    let mut x = vec![0.0f64; n];
    let mut per_device = vec![LaunchStats::default(); devices];
    let mut failures: Vec<(usize, SimtError)> = Vec::new();
    // Per-level, per-device launch cycles for the makespan model.
    let mut lvl_cycles = vec![vec![0u64; devices]; n_levels];

    for d in 0..devices {
        let (r0, r1) = part.range(d);
        if r1 == r0 {
            continue;
        }
        let mut dev = GpuDevice::new(config.clone());
        let m = DeviceCsr::upload(&mut dev, l);
        let sb = SolveBuffers::upload(&mut dev, b);

        // Host-side boundary exchange: producers already finished.
        let imports = part.imports(d);
        if !imports.is_empty() {
            let mut xs = vec![0.0f64; n];
            for &r in &imports {
                xs[r as usize] = x[r as usize];
            }
            dev.mem().write_f64(sb.x, &xs);
        }

        // Filtered order: this shard's rows, in global level order.
        let mut local_order: Vec<u32> = Vec::with_capacity((r1 - r0) as usize);
        let mut local_ptr: Vec<usize> = Vec::with_capacity(n_levels + 1);
        local_ptr.push(0);
        for lvl in 0..n_levels {
            local_order.extend(
                levels
                    .rows_in_level(lvl)
                    .iter()
                    .copied()
                    .filter(|&r| r >= r0 && r < r1),
            );
            local_ptr.push(local_order.len());
        }
        let order = dev.mem().alloc_u32(&local_order);

        let mut total = LaunchStats::default();
        let mut err = None;
        for lvl in 0..n_levels {
            let lo = local_ptr[lvl];
            let count = local_ptr[lvl + 1] - lo;
            if count == 0 {
                continue;
            }
            let kernel = LevelSolveKernel::new(m, sb.b, sb.x, order, lo, count);
            match dev.launch(&kernel, count.div_ceil(ws)) {
                Ok(stats) => {
                    lvl_cycles[lvl][d] = stats.cycles;
                    total.accumulate(&stats);
                }
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        match err {
            None => {
                let xs = dev.mem_ref().read_f64(sb.x);
                x[r0 as usize..r1 as usize].copy_from_slice(&xs[r0 as usize..r1 as usize]);
                per_device[d] = total;
            }
            Some(e) => failures.push((d, e)),
        }
    }

    if !failures.is_empty() {
        return Err(merge_deadlock(failures));
    }

    // Makespan: per level, every device runs its slice concurrently, then
    // the level's boundary rows cross their links before the next level.
    let mut clock_ticks = 0u64;
    for (lvl, per_dev) in lvl_cycles.iter().enumerate().take(n_levels) {
        let step = per_dev.iter().copied().max().unwrap_or(0) * tpc;
        let end = clock_ticks + step;
        let mut next = end;
        for c in 0..devices {
            for p in 0..c {
                for &r in part.imports_from(c, p) {
                    if levels.level_of(r as usize) as usize == lvl {
                        next = next.max(links.transfer(p, c, end));
                    }
                }
            }
        }
        clock_ticks = next;
    }
    let makespan = clock_ticks.div_ceil(tpc);
    Ok((x, per_device, makespan))
}

/// A producer-side CSC scatter delta destined for a downstream shard.
#[derive(Debug, Clone, Copy)]
struct CscDelta {
    tick: u64,
    row: u32,
    to_left_sum: bool,
    op: ExtOp,
}

/// Sharded SyncFree-CSC driver: warp-per-*column* behind a [`ShardView`].
/// Consumers never read a producer's `x`; the boundary traffic is the
/// scatter deltas themselves (`atomicAdd left_sum` / `atomicSub
/// in_degree`), replayed on the owner's mirrors in publication order. Each
/// link preserves order, and a row's in-degree only reaches zero after
/// every link has delivered its add-before-sub pair, so the consumer's
/// division sees the complete left sum.
fn solve_csc(
    config: &DeviceConfig,
    l: &LowerTriangularCsr,
    b: &[f64],
    part: &RowPartition,
    links: &mut Links,
) -> Result<ShardRun, SimtError> {
    let n = l.n();
    let ws = config.warp_size;
    let devices = part.devices();
    let csc = l.csr().to_csc();
    let deg = syncfree_csc::in_degrees(&csc);
    let mut x = vec![0.0f64; n];
    let mut per_device = vec![LaunchStats::default(); devices];
    let mut failures: Vec<(usize, SimtError)> = Vec::new();
    // deltas[p]: boundary scatters captured on producer p, in tick order.
    let mut deltas: Vec<Vec<CscDelta>> = vec![Vec::new(); devices];

    for d in 0..devices {
        let (r0, r1) = part.range(d);
        if r1 == r0 {
            continue;
        }
        let mut dev = GpuDevice::new(config.clone());
        let dc = syncfree_csc::upload_csc(&mut dev, &csc, &deg);
        let b_buf = dev.mem().alloc_f64(b);
        let x_buf = dev.mem().alloc_f64_zeroed(n);

        let mut events: Vec<ExtEvent> = Vec::new();
        for (p, from) in deltas.iter().enumerate().take(d) {
            for delta in from.iter().filter(|dl| part.owner_of(dl.row) == d) {
                let arrival = links.transfer(p, d, delta.tick);
                events.push(ExtEvent {
                    tick: arrival,
                    buf: if delta.to_left_sum {
                        dc.left_sum.raw()
                    } else {
                        dc.in_degree.raw()
                    },
                    idx: delta.row,
                    op: delta.op,
                });
            }
        }
        events.sort_by_key(|e| e.tick);
        dev.mem()
            .set_watch(&[dc.left_sum.raw(), dc.in_degree.raw()]);
        let kernel = ShardView::new(
            SyncFreeCscKernel::new(dc, b_buf, x_buf, ws),
            r0 * ws as u32,
            r1 * ws as u32,
        );
        match dev.launch_with_events(&kernel, (r1 - r0) as usize, &events) {
            Ok(stats) => {
                let mut recs = dev.mem().take_watch();
                recs.sort_by_key(|r| r.tick);
                deltas[d] = recs
                    .into_iter()
                    .filter(|r| part.owner_of(r.idx) > d)
                    .map(|r| CscDelta {
                        tick: r.tick,
                        row: r.idx,
                        to_left_sum: r.buf == dc.left_sum.raw(),
                        op: r.op,
                    })
                    .collect();
                let xs = dev.mem_ref().read_f64(x_buf);
                x[r0 as usize..r1 as usize].copy_from_slice(&xs[r0 as usize..r1 as usize]);
                per_device[d] = stats;
            }
            Err(e) => failures.push((d, e)),
        }
    }
    finish(failures, x, per_device)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::solve_simulated;

    fn bits(x: &[f64]) -> Vec<u64> {
        x.iter().map(|v| v.to_bits()).collect()
    }

    fn sharded_matches_unsharded(algorithm: Algorithm, devices: usize) {
        let config = DeviceConfig::pascal_like();
        let l = capellini_sparse::gen::random_k(600, 6, 90, 17);
        let b: Vec<f64> = (0..l.n()).map(|i| 1.0 + (i % 7) as f64).collect();
        let single = solve_simulated(&config, &l, &b, algorithm).expect("unsharded solve");
        let report = solve_sharded(&config, &l, &b, algorithm, &ShardConfig::pcie(devices))
            .expect("sharded solve");
        assert_eq!(
            bits(&report.x),
            bits(&single.x),
            "{algorithm:?} must be bit-identical across {devices} devices"
        );
    }

    #[test]
    fn writing_first_sharded_is_bit_identical() {
        sharded_matches_unsharded(Algorithm::CapelliniWritingFirst, 3);
    }

    #[test]
    fn scheduled_sharded_is_bit_identical() {
        sharded_matches_unsharded(Algorithm::Scheduled, 3);
    }

    #[test]
    fn levelset_sharded_is_bit_identical() {
        sharded_matches_unsharded(Algorithm::LevelSet, 4);
    }

    #[test]
    fn csc_sharded_matches_within_tolerance() {
        let config = DeviceConfig::pascal_like();
        let l = capellini_sparse::gen::random_k(400, 5, 60, 9);
        let b: Vec<f64> = (0..l.n()).map(|i| 0.5 + (i % 5) as f64).collect();
        let single = solve_simulated(&config, &l, &b, Algorithm::SyncFreeCsc).expect("unsharded");
        let report = solve_sharded(
            &config,
            &l,
            &b,
            Algorithm::SyncFreeCsc,
            &ShardConfig::nvlink(3),
        )
        .expect("sharded");
        for (i, (&a, &c)) in report.x.iter().zip(single.x.iter()).enumerate() {
            assert!(
                (a - c).abs() <= 1e-10 * c.abs().max(1.0),
                "row {i}: sharded {a} vs single {c}"
            );
        }
    }

    #[test]
    fn sharding_generates_link_traffic() {
        let config = DeviceConfig::pascal_like();
        let l = capellini_sparse::gen::chain(256, 1, 3);
        let b = vec![1.0f64; l.n()];
        let report = solve_sharded(
            &config,
            &l,
            &b,
            Algorithm::CapelliniWritingFirst,
            &ShardConfig::pcie(2),
        )
        .expect("sharded solve");
        assert!(report.link_messages >= 1, "a chain crosses every cut");
        assert_eq!(report.link_bytes, report.link_messages * MSG_BYTES);
        assert!(report.makespan_cycles > 0);
    }

    #[test]
    fn shard_config_rejects_bad_device_counts() {
        assert!(ShardConfig::pcie(0).validate().is_err());
        assert!(ShardConfig::pcie(9).validate().is_err());
        assert!(ShardConfig::pcie(8).validate().is_ok());
    }
}
