//! # capellini-core
//!
//! The CapelliniSpTRSV algorithm library: a faithful reproduction of the
//! paper's Algorithms 1–5 plus the cuSPARSE-like baseline, the §3.3
//! deadlocking straw man, and the §4.4 warp/thread hybrid — all as kernels
//! for the [`capellini_simt`] SIMT simulator — along with native
//! multithreaded CPU solvers and a high-level [`Solver`] facade.
//!
//! ```
//! use capellini_core::prelude::*;
//! use capellini_sparse::gen;
//!
//! // An LP-factor-shaped system in the high-granularity regime.
//! let l = gen::ultra_sparse_wide(2_000, 8, 1, 7);
//! let b = vec![1.0; l.n()];
//! let solver = Solver::new(l);
//! assert_eq!(solver.recommend(), Algorithm::CapelliniWritingFirst);
//!
//! let report = solver
//!     .solve_simulated(&DeviceConfig::pascal_like(), &b)
//!     .expect("writing-first never deadlocks");
//! let x_ref = solver.solve_serial(&b);
//! capellini_sparse::linalg::assert_solutions_close(&report.x, &x_ref, 1e-11);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod buffers;
pub mod cpu;
pub mod iterative;
pub mod kernels;
pub mod reference;
pub mod select;
pub mod service;
pub mod session;
pub mod shard;
pub mod solver;
pub mod upper;

pub use buffers::{DeviceCsr, MultiSolveBuffers, PooledSolveBuffers, RhsLayout, SolveBuffers};
pub use iterative::{gauss_seidel, pcg_ssor, sor, IterResult, SsorPreconditioner};
pub use kernels::SimSolve;
pub use reference::{solve_serial_csc, solve_serial_csr};
pub use select::{
    algorithm_traits, recommend, recommend_for_reuse, Algorithm, CostAwareChoice, TraitRow,
    GRANULARITY_THRESHOLD, NOMINAL_CYCLES_PER_MS,
};
pub use service::{
    MatrixHandle, ServiceConfig, ServiceError, ServiceMetrics, ServiceResponse, SolverService,
    TenantMetrics,
};
pub use session::SolverSession;
pub use shard::{
    solve_sharded, solve_sharded_with_partition, ShardConfig, ShardedReport, MSG_BYTES,
};
pub use solver::{solve_multi_simulated, solve_simulated, MultiSolveReport, SolveReport, Solver};
pub use upper::solve_upper_simulated;

/// Convenient glob import.
pub mod prelude {
    pub use crate::cpu::{solve_levelset_parallel, solve_selfsched, Distribution};
    pub use crate::iterative::{gauss_seidel, pcg_ssor, sor, IterResult};
    pub use crate::reference::{solve_serial_csc, solve_serial_csr};
    pub use crate::select::{recommend, Algorithm};
    pub use crate::service::{
        MatrixHandle, ServiceConfig, ServiceError, ServiceResponse, SolverService,
    };
    pub use crate::session::SolverSession;
    pub use crate::shard::{solve_sharded, ShardConfig, ShardedReport};
    pub use crate::solver::{
        solve_multi_simulated, solve_simulated, MultiSolveReport, SolveReport, Solver,
    };
    pub use crate::upper::solve_upper_simulated;
    pub use capellini_simt::DeviceConfig;
}
