//! Iterative solvers built on SpTRSV — the paper's motivating application
//! ("preconditioners of sparse iterative solvers", §1): every Gauss–Seidel
//! or SOR sweep *is* one sparse triangular solve, and the SSOR
//! preconditioner of conjugate gradients applies one forward and one
//! backward sweep per iteration.
//!
//! The triangular sweeps run on the self-scheduled busy-wait CPU solver
//! (the thread-level CapelliniSpTRSV analog), so the cost profile matches
//! what a GPU deployment of the paper's kernel would accelerate.

use capellini_sparse::triangular::solve_serial_upper;
use capellini_sparse::{linalg, CsrMatrix, LowerTriangularCsr, SparseError, UpperTriangularCsr};

use crate::cpu::{solve_selfsched, Distribution};

/// Outcome of an iterative solve.
#[derive(Debug, Clone)]
pub struct IterResult {
    /// The final iterate.
    pub x: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Final residual `‖A·x − b‖∞`.
    pub residual: f64,
    /// True if the tolerance was met within the iteration budget.
    pub converged: bool,
}

/// The Gauss–Seidel splitting of a square matrix with nonzero diagonal:
/// `A = (D + L_strict) + U_strict`, with the first factor as a validated
/// lower-triangular system (the SpTRSV input) and the second as a general
/// CSR matrix.
pub fn gauss_seidel_split(a: &CsrMatrix) -> Result<(LowerTriangularCsr, CsrMatrix), SparseError> {
    if a.n_rows() != a.n_cols() {
        return Err(SparseError::InvalidStructure(
            "splitting requires a square matrix".into(),
        ));
    }
    let n = a.n_rows();
    let mut lower = capellini_sparse::CooMatrix::new(n, n);
    let mut upper = capellini_sparse::CooMatrix::new(n, n);
    let mut has_diag = vec![false; n];
    for (r, c, v) in a.iter() {
        if c <= r {
            lower.push(r, c, v);
            if c == r && v != 0.0 {
                has_diag[r as usize] = true;
            }
        } else {
            upper.push(r, c, v);
        }
    }
    if let Some(row) = has_diag.iter().position(|&d| !d) {
        return Err(SparseError::BadDiagonal { row });
    }
    Ok((
        LowerTriangularCsr::try_new(CsrMatrix::from_coo(&lower))?,
        CsrMatrix::from_coo(&upper),
    ))
}

/// Gauss–Seidel iteration `(D+L)·x_{k+1} = b − U·x_k`, each sweep one
/// thread-level SpTRSV.
pub fn gauss_seidel(
    a: &CsrMatrix,
    b: &[f64],
    tol: f64,
    max_iters: usize,
    threads: usize,
) -> Result<IterResult, SparseError> {
    let (lower, upper) = gauss_seidel_split(a)?;
    let n = a.n_rows();
    assert_eq!(b.len(), n, "rhs length must equal matrix dimension");
    let mut x = vec![0.0f64; n];
    for it in 1..=max_iters {
        let ux = linalg::spmv(&upper, &x);
        let rhs: Vec<f64> = b.iter().zip(&ux).map(|(bi, ui)| bi - ui).collect();
        x = solve_selfsched(&lower, &rhs, threads, Distribution::Cyclic);
        let res = residual_general(a, &x, b);
        if res <= tol {
            return Ok(IterResult {
                x,
                iterations: it,
                residual: res,
                converged: true,
            });
        }
    }
    let residual = residual_general(a, &x, b);
    Ok(IterResult {
        x,
        iterations: max_iters,
        residual,
        converged: false,
    })
}

/// Successive over-relaxation: `(D/ω + L)·x_{k+1} = b − (U + (1−1/ω)·D)·x_k`.
pub fn sor(
    a: &CsrMatrix,
    b: &[f64],
    omega: f64,
    tol: f64,
    max_iters: usize,
    threads: usize,
) -> Result<IterResult, SparseError> {
    assert!(omega > 0.0 && omega < 2.0, "SOR requires 0 < omega < 2");
    let n = a.n_rows();
    assert_eq!(b.len(), n, "rhs length must equal matrix dimension");
    // Build (D/ω + L) and (U + (1 − 1/ω)·D).
    let mut lower = capellini_sparse::CooMatrix::new(n, n);
    let mut rest = capellini_sparse::CooMatrix::new(n, n);
    for (r, c, v) in a.iter() {
        if c < r {
            lower.push(r, c, v);
        } else if c == r {
            lower.push(r, c, v / omega);
            rest.push(r, c, v * (1.0 - 1.0 / omega));
        } else {
            rest.push(r, c, v);
        }
    }
    let lower = LowerTriangularCsr::try_new(CsrMatrix::from_coo(&lower))?;
    let rest = CsrMatrix::from_coo(&rest);
    let mut x = vec![0.0f64; n];
    for it in 1..=max_iters {
        let rx = linalg::spmv(&rest, &x);
        let rhs: Vec<f64> = b.iter().zip(&rx).map(|(bi, ri)| bi - ri).collect();
        x = solve_selfsched(&lower, &rhs, threads, Distribution::Cyclic);
        let res = residual_general(a, &x, b);
        if res <= tol {
            return Ok(IterResult {
                x,
                iterations: it,
                residual: res,
                converged: true,
            });
        }
    }
    let residual = residual_general(a, &x, b);
    Ok(IterResult {
        x,
        iterations: max_iters,
        residual,
        converged: false,
    })
}

/// The SSOR preconditioner `M = (D+L)·D⁻¹·(D+U)` of a symmetric matrix:
/// applying `M⁻¹ r` is one forward SpTRSV, a diagonal scale, and one
/// backward SpTRSV — the exact workload the paper accelerates.
pub struct SsorPreconditioner {
    lower: LowerTriangularCsr,
    upper: UpperTriangularCsr,
    diag: Vec<f64>,
    threads: usize,
}

impl SsorPreconditioner {
    /// Builds the preconditioner from a symmetric matrix with nonzero
    /// diagonal (symmetry is the caller's responsibility).
    pub fn new(a: &CsrMatrix, threads: usize) -> Result<Self, SparseError> {
        let (lower, _) = gauss_seidel_split(a)?;
        let n = a.n_rows();
        let diag: Vec<f64> = (0..n).map(|i| lower.diag(i)).collect();
        // (D + U) = (D + L)ᵀ for symmetric A.
        let upper = UpperTriangularCsr::transpose_of(&lower);
        Ok(SsorPreconditioner {
            lower,
            upper,
            diag,
            threads,
        })
    }

    /// Applies `M⁻¹ r`.
    pub fn apply(&self, r: &[f64]) -> Vec<f64> {
        let y = solve_selfsched(&self.lower, r, self.threads, Distribution::Cyclic);
        let scaled: Vec<f64> = y.iter().zip(&self.diag).map(|(yi, di)| yi * di).collect();
        solve_serial_upper(&self.upper, &scaled)
    }
}

/// Preconditioned conjugate gradients with the SSOR preconditioner.
/// `a` must be symmetric positive definite.
pub fn pcg_ssor(
    a: &CsrMatrix,
    b: &[f64],
    tol: f64,
    max_iters: usize,
    threads: usize,
) -> Result<IterResult, SparseError> {
    let n = a.n_rows();
    assert_eq!(b.len(), n, "rhs length must equal matrix dimension");
    let m = SsorPreconditioner::new(a, threads)?;
    let mut x = vec![0.0f64; n];
    let mut r = b.to_vec();
    let mut z = m.apply(&r);
    let mut p = z.clone();
    let mut rz = dot(&r, &z);
    for it in 1..=max_iters {
        let ap = linalg::spmv(a, &p);
        let alpha = rz / dot(&p, &ap);
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let res = linalg::norm_inf(&r);
        if res <= tol {
            return Ok(IterResult {
                x,
                iterations: it,
                residual: res,
                converged: true,
            });
        }
        z = m.apply(&r);
        let rz_new = dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }
    let residual = residual_general(a, &x, b);
    Ok(IterResult {
        x,
        iterations: max_iters,
        residual,
        converged: false,
    })
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn residual_general(a: &CsrMatrix, x: &[f64], b: &[f64]) -> f64 {
    let ax = linalg::spmv(a, x);
    ax.iter()
        .zip(b)
        .map(|(p, q)| (p - q).abs())
        .fold(0.0f64, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use capellini_sparse::{gen, CooMatrix};

    /// A symmetric, strictly diagonally dominant (hence SPD) test system
    /// assembled from a generated sparsity pattern.
    fn spd_system(n: usize, seed: u64) -> (CsrMatrix, Vec<f64>, Vec<f64>) {
        let pattern = gen::powerlaw(n, 3.0, seed);
        let mut coo = CooMatrix::new(n, n);
        for (r, c, v) in pattern.csr().iter() {
            if c < r {
                coo.push(r, c, 0.4 * v);
                coo.push(c, r, 0.4 * v);
            }
        }
        // Strict diagonal dominance by construction: a_ii = 1 + sum|a_ij|.
        coo.compress();
        let off = CsrMatrix::from_coo(&coo);
        let mut coo = off.to_coo();
        for i in 0..n {
            let (_, vals) = off.row(i);
            let row_sum: f64 = vals.iter().map(|v| v.abs()).sum();
            coo.push(i as u32, i as u32, 1.0 + row_sum);
        }
        let a = CsrMatrix::from_coo(&coo);
        let x_true: Vec<f64> = (0..n).map(|i| ((i % 7) as f64) - 3.0).collect();
        let b = linalg::spmv(&a, &x_true);
        (a, b, x_true)
    }

    #[test]
    fn split_partitions_the_matrix() {
        let (a, _, _) = spd_system(200, 90);
        let (lower, upper) = gauss_seidel_split(&a).unwrap();
        assert_eq!(lower.nnz() + upper.nnz(), a.nnz());
        assert!(upper.iter().all(|(r, c, _)| c > r));
    }

    #[test]
    fn split_rejects_zero_diagonal() {
        let coo = CooMatrix::from_triplets(2, 2, [(0u32, 0u32, 1.0), (1, 0, 1.0)]).unwrap();
        let a = CsrMatrix::from_coo(&coo);
        assert!(matches!(
            gauss_seidel_split(&a),
            Err(SparseError::BadDiagonal { row: 1 })
        ));
    }

    #[test]
    fn gauss_seidel_converges_on_dominant_systems() {
        let (a, b, x_true) = spd_system(1_500, 91);
        let out = gauss_seidel(&a, &b, 1e-10, 200, 4).unwrap();
        assert!(
            out.converged,
            "residual {} after {}",
            out.residual, out.iterations
        );
        let err = out
            .x
            .iter()
            .zip(&x_true)
            .map(|(p, q)| (p - q).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-8, "error {err}");
    }

    #[test]
    fn sor_accelerates_or_matches_gauss_seidel() {
        let (a, b, _) = spd_system(1_500, 92);
        let gs = gauss_seidel(&a, &b, 1e-10, 300, 2).unwrap();
        let sr = sor(&a, &b, 1.2, 1e-10, 300, 2).unwrap();
        assert!(sr.converged);
        assert!(
            sr.iterations <= gs.iterations + 5,
            "SOR {} vs GS {}",
            sr.iterations,
            gs.iterations
        );
    }

    #[test]
    fn pcg_ssor_converges_fast() {
        let (a, b, x_true) = spd_system(2_000, 93);
        let out = pcg_ssor(&a, &b, 1e-10, 60, 4).unwrap();
        assert!(
            out.converged,
            "residual {} after {}",
            out.residual, out.iterations
        );
        let err = out
            .x
            .iter()
            .zip(&x_true)
            .map(|(p, q)| (p - q).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-7, "error {err}");
        // The preconditioner should beat unpreconditioned-style sweep counts.
        let gs = gauss_seidel(&a, &b, 1e-10, 300, 4).unwrap();
        assert!(
            out.iterations < gs.iterations,
            "PCG {} vs GS {}",
            out.iterations,
            gs.iterations
        );
    }

    #[test]
    #[should_panic(expected = "SOR requires")]
    fn sor_rejects_bad_omega() {
        let (a, b, _) = spd_system(50, 94);
        let _ = sor(&a, &b, 2.5, 1e-8, 10, 1);
    }
}
