//! Multi-tenant solver service with continuous batching: the productionized
//! form of [`SolverSession`].
//!
//! A [`SolverSession`] amortizes analysis for exactly one caller. This
//! module turns it into a serving layer for many concurrent callers:
//!
//! * **Sharded, LRU-bounded session registry.** Sessions are keyed by the
//!   matrix content fingerprint ([`capellini_sparse::fingerprint`]) and
//!   spread over [`ServiceConfig::shards`] independently-locked shards.
//!   Each shard retains at most [`ServiceConfig::sessions_per_shard`]
//!   sessions in LRU order; evicting an entry retires its worker, which
//!   drops the whole [`capellini_simt::GpuDevice`] — bounding simulated
//!   device memory no matter how many distinct matrices tenants submit.
//!   A later request for an evicted matrix is re-admitted and re-analyzed
//!   transparently.
//!
//! * **Continuous batching.** Each resident session is owned by one worker
//!   thread draining a per-matrix request queue. Concurrently-arriving
//!   right-hand sides for the *same* matrix coalesce into a single
//!   [`SolverSession::solve_multi`] launch: under backlog the worker takes
//!   up to [`ServiceConfig::max_batch`] pending vectors the moment the
//!   previous launch retires (batch formation is free at saturation); at
//!   low load it lingers up to the bounded
//!   [`ServiceConfig::coalesce_window`] so near-simultaneous arrivals still
//!   share a launch. A zero window disables coalescing entirely (every
//!   request solves alone) — the baseline configuration the load generator
//!   compares against. Every coalesced batch is bit-identical to looped
//!   single solves: that is the multi-RHS kernel invariant `tests/batched.rs`
//!   pins, and `tests/service.rs` re-pins it end to end through the service.
//!
//! * **Admission control.** The per-matrix queue is bounded by
//!   [`ServiceConfig::max_queue_depth`]; a request that would exceed it is
//!   rejected with the structured [`ServiceError::Overloaded`] instead of
//!   growing the queue without bound.
//!
//! * **Per-tenant metrics.** Solves, rejects, coalesced-batch sizes, and
//!   queue-wait accounting per tenant ([`TenantMetrics`]) plus service-wide
//!   aggregates ([`ServiceMetrics`]).

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use capellini_simt::{DeviceConfig, SimtError};
use capellini_sparse::{fingerprint, LowerTriangularCsr};

use crate::select::Algorithm;
use crate::session::SolverSession;

/// Locks a mutex, recovering from poison. A worker that panics mid-batch
/// poisons every lock it held; the service treats the panic as that
/// worker's failure (its callers get [`ServiceError::WorkerPanicked`]), not
/// as a reason for *unrelated* tenants' requests to start panicking on
/// `lock().expect(...)`. All guarded state stays consistent under panic:
/// metrics are plain counters, and queue/registry invariants are restored
/// by the panicking worker's deregistration path.
fn lock_ok<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

// ------------------------------------------------------------ configuration

/// Tuning knobs of a [`SolverService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Device configuration every session is built from.
    pub device: DeviceConfig,
    /// Number of independently-locked registry shards (≥ 1).
    pub shards: usize,
    /// LRU capacity per shard: at most `shards * sessions_per_shard`
    /// sessions (and simulated devices) are resident at once (≥ 1).
    pub sessions_per_shard: usize,
    /// How long an idle worker lingers for additional same-matrix arrivals
    /// before launching a sub-full batch. `Duration::ZERO` disables
    /// coalescing: every request is served by its own launch.
    pub coalesce_window: Duration,
    /// Cap on right-hand sides coalesced into one launch (≥ 1).
    pub max_batch: usize,
    /// Bound on pending requests per matrix; arrivals beyond it are
    /// rejected with [`ServiceError::Overloaded`] (≥ 1).
    pub max_queue_depth: usize,
    /// Algorithm override. `None` selects per matrix by the Figure 6 rule
    /// ([`crate::select::recommend`]).
    pub algorithm: Option<Algorithm>,
}

impl ServiceConfig {
    /// Defaults sized for the evaluation suite: 4 shards × 8 sessions,
    /// a 2 ms coalesce window, batches of up to 8, queue depth 1024.
    pub fn new(device: DeviceConfig) -> Self {
        ServiceConfig {
            device,
            shards: 4,
            sessions_per_shard: 8,
            coalesce_window: Duration::from_millis(2),
            max_batch: 8,
            max_queue_depth: 1024,
            algorithm: None,
        }
    }

    /// Sets the shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Sets the per-shard LRU capacity.
    pub fn with_sessions_per_shard(mut self, cap: usize) -> Self {
        self.sessions_per_shard = cap.max(1);
        self
    }

    /// Sets the coalesce window (zero disables batching).
    pub fn with_coalesce_window(mut self, window: Duration) -> Self {
        self.coalesce_window = window;
        self
    }

    /// Sets the per-launch batch cap.
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Sets the per-matrix pending-request bound.
    pub fn with_max_queue_depth(mut self, depth: usize) -> Self {
        self.max_queue_depth = depth.max(1);
        self
    }

    /// Forces every session onto one algorithm instead of recommending.
    pub fn with_algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = Some(algorithm);
        self
    }
}

// ------------------------------------------------------------ request types

/// A matrix prepared for submission: the triangular factor plus its content
/// fingerprint, computed once so repeated [`SolverService::solve`] calls
/// never re-hash the matrix.
#[derive(Clone)]
pub struct MatrixHandle {
    l: Arc<LowerTriangularCsr>,
    fp: u64,
}

impl MatrixHandle {
    /// Fingerprints `l` once and wraps it for submission.
    pub fn new(l: LowerTriangularCsr) -> Self {
        let fp = fingerprint(&l);
        MatrixHandle { l: Arc::new(l), fp }
    }

    /// The registry key: the matrix content fingerprint.
    pub fn fingerprint(&self) -> u64 {
        self.fp
    }

    /// The wrapped matrix.
    pub fn matrix(&self) -> &LowerTriangularCsr {
        &self.l
    }
}

/// What a served request reports back, alongside the solution.
#[derive(Debug, Clone)]
pub struct ServiceResponse {
    /// The solution vector for this request's right-hand side.
    pub x: Vec<f64>,
    /// The algorithm the serving session runs.
    pub algorithm: Algorithm,
    /// How many right-hand sides shared the launch that served this request
    /// (1 = no coalescing happened for it).
    pub batch_size: usize,
    /// Simulated kernel time of that launch, in ms (shared by the batch).
    pub exec_ms: f64,
    /// Wall-clock wait from enqueue to launch start, in ms.
    pub queue_ms: f64,
}

/// Structured failures of [`SolverService::solve`].
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// Admission control: the per-matrix queue is full. Back off and retry.
    Overloaded {
        /// Fingerprint of the congested matrix.
        fingerprint: u64,
        /// The queue depth the request would have exceeded.
        depth: usize,
    },
    /// The request is malformed (e.g. wrong right-hand-side length) and was
    /// rejected before touching any queue.
    BadRequest(String),
    /// The underlying simulated launch failed.
    Solve(SimtError),
    /// The worker thread for this matrix could not be spawned (resource
    /// exhaustion). The registry entry is released, so a retry re-admits
    /// the matrix from scratch.
    SpawnFailed {
        /// Fingerprint of the matrix whose worker failed to start.
        fingerprint: u64,
        /// The OS error.
        reason: String,
    },
    /// The worker serving this matrix panicked. Its session is discarded
    /// and the matrix deregistered; unrelated tenants are unaffected, and a
    /// retry re-admits the matrix with a fresh session.
    WorkerPanicked {
        /// Fingerprint of the matrix whose worker panicked.
        fingerprint: u64,
    },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Overloaded { fingerprint, depth } => write!(
                f,
                "overloaded: queue for matrix {fingerprint:016x} is at its depth bound {depth}"
            ),
            ServiceError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServiceError::Solve(e) => write!(f, "solve failed: {e}"),
            ServiceError::SpawnFailed {
                fingerprint,
                reason,
            } => write!(
                f,
                "could not spawn worker for matrix {fingerprint:016x}: {reason}"
            ),
            ServiceError::WorkerPanicked { fingerprint } => write!(
                f,
                "worker for matrix {fingerprint:016x} panicked; the matrix was deregistered — retry to re-admit"
            ),
        }
    }
}

impl std::error::Error for ServiceError {}

// ----------------------------------------------------------------- metrics

/// Per-tenant serving counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TenantMetrics {
    /// Requests served to completion.
    pub solves: u64,
    /// Requests rejected by admission control.
    pub rejects: u64,
    /// Sum of the batch sizes this tenant's served requests rode in
    /// (`coalesced_rhs / solves` = the tenant's mean coalesced batch).
    pub coalesced_rhs: u64,
    /// Total wall-clock queue wait across served requests, ms.
    pub queue_ms_total: f64,
    /// Largest single queue wait, ms.
    pub queue_ms_max: f64,
}

impl TenantMetrics {
    /// Mean coalesced batch size over this tenant's served requests.
    pub fn mean_batch(&self) -> f64 {
        if self.solves == 0 {
            0.0
        } else {
            self.coalesced_rhs as f64 / self.solves as f64
        }
    }

    /// Mean queue wait over this tenant's served requests, ms.
    pub fn mean_queue_ms(&self) -> f64 {
        if self.solves == 0 {
            0.0
        } else {
            self.queue_ms_total / self.solves as f64
        }
    }
}

/// Service-wide serving counters (a snapshot; see
/// [`SolverService::metrics`]).
#[derive(Debug, Clone, Default)]
pub struct ServiceMetrics {
    /// Requests served to completion.
    pub solves: u64,
    /// Kernel launches performed (`solves / launches` = mean coalesced
    /// batch; see [`ServiceMetrics::mean_batch`]).
    pub launches: u64,
    /// Requests rejected by admission control.
    pub rejects: u64,
    /// Requests that failed inside the simulated launch.
    pub solve_errors: u64,
    /// Sessions constructed (first admissions plus re-admissions after
    /// eviction).
    pub sessions_created: u64,
    /// Sessions evicted by the LRU bound.
    pub evictions: u64,
    /// Sessions currently resident across all shards.
    pub resident_sessions: usize,
    /// Largest coalesced batch observed.
    pub largest_batch: usize,
    /// Total one-time analysis cost paid by session constructions, ms.
    pub analysis_ms_total: f64,
    /// Total wall-clock queue wait across served requests, ms.
    pub queue_ms_total: f64,
}

impl ServiceMetrics {
    /// Mean coalesced batch size across every launch the service performed.
    pub fn mean_batch(&self) -> f64 {
        if self.launches == 0 {
            0.0
        } else {
            self.solves as f64 / self.launches as f64
        }
    }
}

#[derive(Default)]
struct MetricsInner {
    global: ServiceMetrics,
    tenants: HashMap<String, TenantMetrics>,
}

// ----------------------------------------------------------- registry state

/// One queued request, waiting to be coalesced into a launch.
struct Pending {
    b: Vec<f64>,
    tenant: String,
    enqueued: Instant,
    ticket: Arc<Ticket>,
}

/// The rendezvous a blocked caller waits on.
struct Ticket {
    slot: Mutex<Option<Result<ServiceResponse, ServiceError>>>,
    ready: Condvar,
}

impl Ticket {
    fn new() -> Arc<Self> {
        Arc::new(Ticket {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        })
    }

    fn deliver(&self, result: Result<ServiceResponse, ServiceError>) {
        let mut slot = lock_ok(&self.slot);
        *slot = Some(result);
        self.ready.notify_all();
    }

    fn wait(&self) -> Result<ServiceResponse, ServiceError> {
        let mut slot = lock_ok(&self.slot);
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self
                .ready
                .wait(slot)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }
}

struct EntryQueue {
    pending: VecDeque<Pending>,
    /// Set by eviction (or service shutdown). The worker drains what is
    /// already queued, then exits and drops its session — freeing the
    /// simulated device. Checked under the same lock by submitters, so a
    /// request can never be enqueued after the worker left.
    shutdown: bool,
}

/// One resident matrix: its request queue plus the handle the worker
/// (re)builds the session from.
struct MatrixEntry {
    l: Arc<LowerTriangularCsr>,
    fp: u64,
    queue: Mutex<EntryQueue>,
    arrivals: Condvar,
}

struct Shard {
    entries: HashMap<u64, Arc<MatrixEntry>>,
    /// Fingerprints from least- to most-recently used.
    lru: VecDeque<u64>,
}

impl Shard {
    fn touch(&mut self, fp: u64) {
        if let Some(pos) = self.lru.iter().position(|&f| f == fp) {
            self.lru.remove(pos);
        }
        self.lru.push_back(fp);
    }
}

struct ServiceShared {
    config: ServiceConfig,
    metrics: Mutex<MetricsInner>,
    /// Registry shards live in the shared state so a panicking worker can
    /// deregister its own matrix (see [`deregister`]).
    shards: Vec<Mutex<Shard>>,
}

// ----------------------------------------------------------------- service

/// The multi-tenant serving layer. See the module docs for the
/// architecture; `tests/service.rs` pins its end-to-end bit-exactness
/// against fresh serial [`SolverSession`] solves.
pub struct SolverService {
    shared: Arc<ServiceShared>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl SolverService {
    /// Starts an empty service. Workers are spawned lazily, one per
    /// admitted matrix.
    pub fn new(config: ServiceConfig) -> Self {
        let shards = (0..config.shards.max(1))
            .map(|_| {
                Mutex::new(Shard {
                    entries: HashMap::new(),
                    lru: VecDeque::new(),
                })
            })
            .collect();
        SolverService {
            shared: Arc::new(ServiceShared {
                config,
                metrics: Mutex::new(MetricsInner::default()),
                shards,
            }),
            workers: Mutex::new(Vec::new()),
        }
    }

    /// The configuration the service was started with.
    pub fn config(&self) -> &ServiceConfig {
        &self.shared.config
    }

    /// Solves `L x = b` for the given tenant, blocking until the response
    /// is ready (or the request is rejected). Safe to call from many
    /// threads at once; concurrent calls for the same matrix coalesce.
    pub fn solve(
        &self,
        tenant: &str,
        matrix: &MatrixHandle,
        b: &[f64],
    ) -> Result<ServiceResponse, ServiceError> {
        let n = matrix.matrix().n();
        if b.len() != n {
            return Err(ServiceError::BadRequest(format!(
                "rhs length {} does not match matrix dimension {n}",
                b.len()
            )));
        }
        loop {
            let entry = self.admit(matrix)?;
            let ticket = {
                let mut q = lock_ok(&entry.queue);
                if q.shutdown {
                    // Evicted between lookup and enqueue; the registry no
                    // longer maps this fingerprint, so retry re-admits it.
                    continue;
                }
                if q.pending.len() >= self.shared.config.max_queue_depth {
                    drop(q);
                    let mut m = lock_ok(&self.shared.metrics);
                    m.global.rejects += 1;
                    m.tenants.entry(tenant.to_string()).or_default().rejects += 1;
                    return Err(ServiceError::Overloaded {
                        fingerprint: matrix.fp,
                        depth: self.shared.config.max_queue_depth,
                    });
                }
                let ticket = Ticket::new();
                q.pending.push_back(Pending {
                    b: b.to_vec(),
                    tenant: tenant.to_string(),
                    enqueued: Instant::now(),
                    ticket: Arc::clone(&ticket),
                });
                entry.arrivals.notify_one();
                ticket
            };
            return ticket.wait();
        }
    }

    /// A snapshot of the service-wide counters.
    pub fn metrics(&self) -> ServiceMetrics {
        let mut snap = lock_ok(&self.shared.metrics).global.clone();
        snap.resident_sessions = self
            .shared
            .shards
            .iter()
            .map(|s| lock_ok(s).entries.len())
            .sum();
        snap
    }

    /// A snapshot of one tenant's counters (`None` if the tenant has never
    /// submitted).
    pub fn tenant_metrics(&self, tenant: &str) -> Option<TenantMetrics> {
        lock_ok(&self.shared.metrics).tenants.get(tenant).cloned()
    }

    /// Snapshots of every tenant's counters, sorted by tenant name.
    pub fn all_tenant_metrics(&self) -> Vec<(String, TenantMetrics)> {
        let m = lock_ok(&self.shared.metrics);
        let mut v: Vec<(String, TenantMetrics)> = m
            .tenants
            .iter()
            .map(|(k, t)| (k.clone(), t.clone()))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Evicts every resident session and joins every worker. Called by
    /// `Drop`; also usable explicitly to quiesce before reading final
    /// metrics.
    pub fn shutdown(&self) {
        for shard in &self.shared.shards {
            let mut s = lock_ok(shard);
            for entry in s.entries.values() {
                let mut q = lock_ok(&entry.queue);
                q.shutdown = true;
                entry.arrivals.notify_all();
            }
            s.entries.clear();
            s.lru.clear();
        }
        let handles = std::mem::take(&mut *lock_ok(&self.workers));
        for h in handles {
            let _ = h.join();
        }
    }

    /// Looks up (or creates) the registry entry for `matrix`, touching the
    /// LRU and evicting past the capacity bound.
    ///
    /// The worker thread is spawned *before* the entry is published to the
    /// registry: a spawn failure (resource exhaustion) is the structured,
    /// recoverable [`ServiceError::SpawnFailed`], and since nothing was
    /// inserted there is no orphaned entry a later request could enqueue
    /// onto and hang — a retry re-admits the matrix from scratch.
    fn admit(&self, matrix: &MatrixHandle) -> Result<Arc<MatrixEntry>, ServiceError> {
        let shard_idx = (matrix.fp as usize) % self.shared.shards.len();
        let mut shard = lock_ok(&self.shared.shards[shard_idx]);
        if let Some(entry) = shard.entries.get(&matrix.fp) {
            let entry = Arc::clone(entry);
            shard.touch(matrix.fp);
            return Ok(entry);
        }
        // Miss: evict least-recently-used entries over capacity, then admit.
        while shard.entries.len() >= self.shared.config.sessions_per_shard {
            let Some(victim) = shard.lru.pop_front() else {
                break;
            };
            if let Some(old) = shard.entries.remove(&victim) {
                let mut q = lock_ok(&old.queue);
                q.shutdown = true;
                old.arrivals.notify_all();
                drop(q);
                let mut m = lock_ok(&self.shared.metrics);
                m.global.evictions += 1;
            }
        }
        let entry = Arc::new(MatrixEntry {
            l: Arc::clone(&matrix.l),
            fp: matrix.fp,
            queue: Mutex::new(EntryQueue {
                pending: VecDeque::new(),
                shutdown: false,
            }),
            arrivals: Condvar::new(),
        });

        let shared = Arc::clone(&self.shared);
        let worker_entry = Arc::clone(&entry);
        let handle =
            spawn_worker(matrix.fp, move || worker_loop(shared, worker_entry)).map_err(|e| {
                ServiceError::SpawnFailed {
                    fingerprint: matrix.fp,
                    reason: e.to_string(),
                }
            })?;
        shard.entries.insert(matrix.fp, Arc::clone(&entry));
        shard.touch(matrix.fp);
        drop(shard);

        let mut workers = lock_ok(&self.workers);
        workers.retain(|h| !h.is_finished());
        workers.push(handle);
        Ok(entry)
    }
}

/// Spawns the per-matrix worker thread. The thread name carries the *full*
/// 64-bit fingerprint (`{:016x}`); truncating it to 32 bits made distinct
/// matrices indistinguishable in thread listings.
fn spawn_worker(
    fp: u64,
    body: impl FnOnce() + Send + 'static,
) -> std::io::Result<std::thread::JoinHandle<()>> {
    #[cfg(test)]
    if tests::take_injected_spawn_failure(fp) {
        return Err(std::io::Error::other("injected spawn failure"));
    }
    std::thread::Builder::new()
        .name(format!("capellini-serve-{fp:016x}"))
        .spawn(body)
}

impl Drop for SolverService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ------------------------------------------------------------------ worker

/// Removes a panicked worker's matrix from the registry and fails its
/// queued requests, leaving every other tenant untouched. Guarded by
/// `Arc::ptr_eq` so a re-admitted successor entry under the same
/// fingerprint is never torn down by a stale worker.
fn deregister(shared: &ServiceShared, entry: &Arc<MatrixEntry>) {
    let shard_idx = (entry.fp as usize) % shared.shards.len();
    {
        let mut shard = lock_ok(&shared.shards[shard_idx]);
        if shard
            .entries
            .get(&entry.fp)
            .is_some_and(|current| Arc::ptr_eq(current, entry))
        {
            shard.entries.remove(&entry.fp);
            if let Some(pos) = shard.lru.iter().position(|&f| f == entry.fp) {
                shard.lru.remove(pos);
            }
        }
    }
    let drained: Vec<Pending> = {
        let mut q = lock_ok(&entry.queue);
        q.shutdown = true;
        entry.arrivals.notify_all();
        q.pending.drain(..).collect()
    };
    for p in drained {
        p.ticket.deliver(Err(ServiceError::WorkerPanicked {
            fingerprint: entry.fp,
        }));
    }
}

/// The per-matrix serving loop: builds the session (one analysis), then
/// drains the request queue in coalesced batches until evicted and empty.
///
/// Both the session construction and every batch run inside
/// `catch_unwind`: a panic (a bug in one matrix's analysis or kernel) is
/// converted into [`ServiceError::WorkerPanicked`] for the affected
/// callers and the matrix is deregistered — it never poisons the registry
/// locks for unrelated tenants or leaves callers blocked forever.
fn worker_loop(shared: Arc<ServiceShared>, entry: Arc<MatrixEntry>) {
    let config = &shared.config;
    let built = catch_unwind(AssertUnwindSafe(|| match config.algorithm {
        Some(algo) => SolverSession::with_algorithm(&config.device, (*entry.l).clone(), algo),
        None => SolverSession::new(&config.device, (*entry.l).clone()),
    }));
    let mut session = match built {
        Ok(session) => session,
        Err(_) => {
            deregister(&shared, &entry);
            return;
        }
    };
    {
        let mut m = lock_ok(&shared.metrics);
        m.global.sessions_created += 1;
        m.global.analysis_ms_total += session.analysis_ms();
    }
    let coalescing = config.coalesce_window > Duration::ZERO && config.max_batch > 1;
    loop {
        let batch: Vec<Pending> = {
            let mut q = lock_ok(&entry.queue);
            while q.pending.is_empty() && !q.shutdown {
                q = entry
                    .arrivals
                    .wait(q)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
            if q.pending.is_empty() {
                break; // shut down and fully drained
            }
            if coalescing && !q.shutdown && q.pending.len() < config.max_batch {
                // Low load: linger up to the bounded window so
                // near-simultaneous arrivals share the launch. Under
                // backlog (a full batch already pending) this is skipped
                // and batches form for free.
                let deadline = Instant::now() + config.coalesce_window;
                while q.pending.len() < config.max_batch && !q.shutdown {
                    let now = Instant::now();
                    let Some(left) = deadline
                        .checked_duration_since(now)
                        .filter(|d| !d.is_zero())
                    else {
                        break;
                    };
                    let (guard, timeout) = entry
                        .arrivals
                        .wait_timeout(q, left)
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                    q = guard;
                    if timeout.timed_out() {
                        break;
                    }
                }
            }
            let take = if coalescing {
                config.max_batch.min(q.pending.len())
            } else {
                1
            };
            q.pending.drain(..take).collect()
        };
        if let Some(failed) = serve_batch(&shared, &mut session, batch) {
            // The launch panicked: the session may hold corrupt device
            // state, so retire this worker and deregister the matrix
            // before failing the tickets — a retry then re-admits the
            // matrix with a fresh session.
            deregister(&shared, &entry);
            for p in failed {
                p.ticket.deliver(Err(ServiceError::WorkerPanicked {
                    fingerprint: entry.fp,
                }));
            }
            return;
        }
    }
    // Session (and its GpuDevice) dropped here: eviction bounds simulated
    // device memory.
}

/// Runs one coalesced launch and distributes per-column results.
/// Serves one coalesced batch. Returns the undelivered batch if the launch
/// panicked — the caller must deregister the matrix FIRST and only then
/// fail these tickets, so a caller that observes the failure and retries is
/// guaranteed to re-admit a fresh entry rather than enqueue onto the dying
/// one.
fn serve_batch(
    shared: &ServiceShared,
    session: &mut SolverSession,
    batch: Vec<Pending>,
) -> Option<Vec<Pending>> {
    let launch_start = Instant::now();
    let k = batch.len();
    let n = session.matrix().n();
    let launched = catch_unwind(AssertUnwindSafe(|| {
        #[cfg(test)]
        if tests::take_injected_solve_panic(session.fingerprint()) {
            panic!("injected solve panic");
        }
        if k == 1 {
            session.solve(&batch[0].b).map(|rep| (rep.x, rep.exec_ms))
        } else {
            // Pack the row-major n × k block in arrival order; column r
            // belongs to batch[r]. The multi-RHS kernels return each column
            // bit-identical to a looped single solve, so coalescing never
            // changes any tenant's answer.
            let mut bs = vec![0.0; n * k];
            for (r, p) in batch.iter().enumerate() {
                for i in 0..n {
                    bs[i * k + r] = p.b[i];
                }
            }
            session.solve_multi(&bs, k).map(|rep| (rep.x, rep.exec_ms))
        }
    }));
    let launched = match launched {
        Ok(result) => result,
        Err(_) => {
            let mut m = lock_ok(&shared.metrics);
            m.global.solve_errors += k as u64;
            drop(m);
            return Some(batch);
        }
    };
    match launched {
        Ok((x, exec_ms)) => {
            let mut m = lock_ok(&shared.metrics);
            m.global.launches += 1;
            m.global.solves += k as u64;
            m.global.largest_batch = m.global.largest_batch.max(k);
            for (r, p) in batch.iter().enumerate() {
                let queue_ms = launch_start
                    .saturating_duration_since(p.enqueued)
                    .as_secs_f64()
                    * 1e3;
                m.global.queue_ms_total += queue_ms;
                let t = m.tenants.entry(p.tenant.clone()).or_default();
                t.solves += 1;
                t.coalesced_rhs += k as u64;
                t.queue_ms_total += queue_ms;
                t.queue_ms_max = t.queue_ms_max.max(queue_ms);
                let xi: Vec<f64> = if k == 1 {
                    x.clone()
                } else {
                    (0..n).map(|i| x[i * k + r]).collect()
                };
                p.ticket.deliver(Ok(ServiceResponse {
                    x: xi,
                    algorithm: session.algorithm(),
                    batch_size: k,
                    exec_ms,
                    queue_ms,
                }));
            }
        }
        Err(e) => {
            let mut m = lock_ok(&shared.metrics);
            m.global.solve_errors += k as u64;
            drop(m);
            for p in &batch {
                p.ticket.deliver(Err(ServiceError::Solve(e.clone())));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use capellini_sparse::gen;

    /// Fault injection, keyed by matrix fingerprint so concurrently running
    /// tests (each using distinct matrices) never consume each other's
    /// injected faults.
    static INJECTED_SPAWN_FAILURE: Mutex<Option<u64>> = Mutex::new(None);
    static INJECTED_SOLVE_PANIC: Mutex<Option<u64>> = Mutex::new(None);

    fn inject_spawn_failure(fp: u64) {
        *lock_ok(&INJECTED_SPAWN_FAILURE) = Some(fp);
    }

    pub(super) fn take_injected_spawn_failure(fp: u64) -> bool {
        let mut g = lock_ok(&INJECTED_SPAWN_FAILURE);
        if *g == Some(fp) {
            *g = None;
            true
        } else {
            false
        }
    }

    fn inject_solve_panic(fp: u64) {
        *lock_ok(&INJECTED_SOLVE_PANIC) = Some(fp);
    }

    pub(super) fn take_injected_solve_panic(fp: u64) -> bool {
        let mut g = lock_ok(&INJECTED_SOLVE_PANIC);
        if *g == Some(fp) {
            *g = None;
            true
        } else {
            false
        }
    }

    fn cfg() -> DeviceConfig {
        DeviceConfig::pascal_like().scaled_down(4)
    }

    fn rhs(n: usize, seed: usize) -> Vec<f64> {
        (0..n)
            .map(|i| ((i * 37 + seed * 13 + 5) % 31) as f64 - 15.0)
            .collect()
    }

    #[test]
    fn single_request_matches_a_fresh_session() {
        let l = gen::powerlaw(300, 2.6, 11);
        let handle = MatrixHandle::new(l.clone());
        let service = SolverService::new(ServiceConfig::new(cfg()));
        let b = rhs(l.n(), 0);
        let resp = service.solve("t0", &handle, &b).expect("served");
        let mut reference = SolverSession::new(&cfg(), l);
        let expect = reference.solve(&b).expect("reference");
        assert_eq!(resp.algorithm, reference.algorithm());
        for (a, e) in resp.x.iter().zip(&expect.x) {
            assert_eq!(a.to_bits(), e.to_bits());
        }
        assert_eq!(resp.batch_size, 1);
        assert!(resp.queue_ms >= 0.0);
        let m = service.metrics();
        assert_eq!(m.solves, 1);
        assert_eq!(m.launches, 1);
        assert_eq!(m.sessions_created, 1);
        assert_eq!(m.resident_sessions, 1);
        let t = service.tenant_metrics("t0").expect("tenant seen");
        assert_eq!(t.solves, 1);
        assert_eq!(t.rejects, 0);
    }

    #[test]
    fn wrong_rhs_length_is_rejected_before_queueing() {
        let l = gen::diagonal(16);
        let handle = MatrixHandle::new(l);
        let service = SolverService::new(ServiceConfig::new(cfg()));
        let err = service.solve("t0", &handle, &[1.0; 7]).unwrap_err();
        assert!(matches!(err, ServiceError::BadRequest(_)));
        assert!(err.to_string().contains('7'));
        assert_eq!(service.metrics().solves, 0);
        assert_eq!(service.metrics().resident_sessions, 0);
    }

    #[test]
    fn lru_eviction_bounds_resident_sessions() {
        let mats: Vec<_> = (0..3)
            .map(|s| MatrixHandle::new(gen::chain(48, 1, 100 + s)))
            .collect();
        let service = SolverService::new(
            ServiceConfig::new(cfg())
                .with_shards(1)
                .with_sessions_per_shard(2),
        );
        for (i, h) in mats.iter().enumerate() {
            service
                .solve("t0", h, &rhs(h.matrix().n(), i))
                .expect("served");
        }
        let m = service.metrics();
        assert_eq!(m.sessions_created, 3);
        assert!(m.evictions >= 1, "third matrix must evict the LRU entry");
        assert!(m.resident_sessions <= 2);
        // Re-admission of the evicted matrix: transparent, re-analyzed.
        service
            .solve("t0", &mats[0], &rhs(mats[0].matrix().n(), 9))
            .expect("re-admitted");
        assert!(service.metrics().sessions_created >= 4);
    }

    #[test]
    fn spawn_failure_is_recoverable_and_releases_the_entry() {
        let l = gen::powerlaw(200, 2.5, 41);
        let handle = MatrixHandle::new(l.clone());
        let service = SolverService::new(ServiceConfig::new(cfg()));
        let b = rhs(l.n(), 3);

        inject_spawn_failure(handle.fingerprint());
        let err = service.solve("t0", &handle, &b).unwrap_err();
        match err {
            ServiceError::SpawnFailed {
                fingerprint,
                ref reason,
            } => {
                assert_eq!(fingerprint, handle.fingerprint());
                assert!(reason.contains("injected spawn failure"));
            }
            other => panic!("expected SpawnFailed, got {other:?}"),
        }
        // The failed admission published nothing.
        let m = service.metrics();
        assert_eq!(m.resident_sessions, 0);
        assert_eq!(m.sessions_created, 0);

        // A plain retry re-admits the matrix and serves it correctly.
        let resp = service.solve("t0", &handle, &b).expect("retry re-admits");
        let mut reference = SolverSession::new(&cfg(), l);
        let expect = reference.solve(&b).expect("reference");
        for (a, e) in resp.x.iter().zip(&expect.x) {
            assert_eq!(a.to_bits(), e.to_bits());
        }
    }

    #[test]
    fn panicking_worker_does_not_take_down_unrelated_tenants() {
        let bad = gen::powerlaw(180, 2.4, 71);
        let good = gen::powerlaw(220, 2.6, 72);
        let bad_h = MatrixHandle::new(bad.clone());
        let good_h = MatrixHandle::new(good.clone());
        let service = SolverService::new(ServiceConfig::new(cfg()));
        let gb = rhs(good.n(), 1);
        let bb = rhs(bad.n(), 2);
        let first = service.solve("good", &good_h, &gb).expect("good serves");

        inject_solve_panic(bad_h.fingerprint());
        let err = service.solve("bad", &bad_h, &bb).unwrap_err();
        assert!(
            matches!(err, ServiceError::WorkerPanicked { fingerprint }
                if fingerprint == bad_h.fingerprint()),
            "expected WorkerPanicked, got {err:?}"
        );
        assert!(service.metrics().solve_errors >= 1);

        // The unrelated tenant still serves, bit-identical to before.
        let again = service
            .solve("good", &good_h, &gb)
            .expect("good unaffected");
        for (a, e) in again.x.iter().zip(&first.x) {
            assert_eq!(a.to_bits(), e.to_bits());
        }

        // The panicked matrix re-admits with a fresh session on retry.
        let recovered = service.solve("bad", &bad_h, &bb).expect("bad re-admits");
        let mut reference = SolverSession::new(&cfg(), bad);
        let expect = reference.solve(&bb).expect("reference");
        for (a, e) in recovered.x.iter().zip(&expect.x) {
            assert_eq!(a.to_bits(), e.to_bits());
        }
    }

    #[test]
    fn metrics_divisions_are_finite_on_empty_service() {
        let m = ServiceMetrics::default();
        assert_eq!(m.mean_batch(), 0.0);
        let t = TenantMetrics::default();
        assert_eq!(t.mean_batch(), 0.0);
        assert_eq!(t.mean_queue_ms(), 0.0);
    }
}
