//! Algorithm selection: the enumeration of every SpTRSV implementation in
//! this library, the Table 2 property summary, and the granularity-based
//! recommendation rule extracted from the paper's Figure 6.

use capellini_sparse::MatrixStats;

/// Every SpTRSV algorithm this library implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Algorithm 2: level-sets with one launch per level.
    LevelSet,
    /// Algorithm 3: warp-level synchronization-free (Liu et al. [20]).
    SyncFree,
    /// Liu et al.'s original CSC scatter formulation (warp per column,
    /// atomics + in-degree countdown).
    SyncFreeCsc,
    /// The cuSPARSE black-box stand-in (§2.4).
    CusparseLike,
    /// Algorithm 4: Two-Phase CapelliniSpTRSV.
    CapelliniTwoPhase,
    /// Algorithm 5: Writing-First CapelliniSpTRSV (the headline algorithm).
    CapelliniWritingFirst,
    /// The §3.3 straw man (deadlocks on intra-warp dependencies).
    NaiveThread,
    /// §4.4 warp/thread hybrid.
    Hybrid,
}

impl Algorithm {
    /// Display label matching the paper's naming.
    pub fn label(self) -> &'static str {
        match self {
            Algorithm::LevelSet => "Level-Set",
            Algorithm::SyncFree => "SyncFree",
            Algorithm::SyncFreeCsc => "SyncFree-CSC",
            Algorithm::CusparseLike => "cuSPARSE",
            Algorithm::CapelliniTwoPhase => "Capellini (Two-Phase)",
            Algorithm::CapelliniWritingFirst => "Capellini",
            Algorithm::NaiveThread => "Naive thread-level",
            Algorithm::Hybrid => "Hybrid (warp+thread)",
        }
    }

    /// The three algorithms of the paper's headline comparison (Tables 4-5).
    pub fn evaluation_trio() -> [Algorithm; 3] {
        [
            Algorithm::SyncFree,
            Algorithm::CusparseLike,
            Algorithm::CapelliniWritingFirst,
        ]
    }

    /// All live algorithms (excludes the deadlocking straw man).
    pub fn all_live() -> [Algorithm; 7] {
        [
            Algorithm::LevelSet,
            Algorithm::SyncFree,
            Algorithm::SyncFreeCsc,
            Algorithm::CusparseLike,
            Algorithm::CapelliniTwoPhase,
            Algorithm::CapelliniWritingFirst,
            Algorithm::Hybrid,
        ]
    }
}

/// One row of the paper's Table 2 ("Summary for different SpTRSV
/// algorithms").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraitRow {
    /// Algorithm name.
    pub algorithm: &'static str,
    /// Preprocessing overhead.
    pub preprocessing: &'static str,
    /// Storage format consumed.
    pub storage: &'static str,
    /// Whether inter-level synchronization is required.
    pub synchronization: &'static str,
    /// Processing granularity.
    pub granularity: &'static str,
}

/// The rows of Table 2, in the paper's order.
pub fn algorithm_traits() -> [TraitRow; 4] {
    [
        TraitRow {
            algorithm: "Level-Set",
            preprocessing: "high",
            storage: "CSR",
            synchronization: "yes",
            granularity: "thread/warp",
        },
        TraitRow {
            algorithm: "Sync-Free",
            preprocessing: "low",
            storage: "CSC",
            synchronization: "no",
            granularity: "warp",
        },
        TraitRow {
            algorithm: "cuSPARSE",
            preprocessing: "low",
            storage: "CSR",
            synchronization: "unknown",
            granularity: "unknown",
        },
        TraitRow {
            algorithm: "CapelliniSpTRSV",
            preprocessing: "none",
            storage: "CSR",
            synchronization: "no",
            granularity: "thread",
        },
    ]
}

/// The granularity threshold above which CapelliniSpTRSV is preferred: the
/// paper observes SyncFree's performance peaks at 0.7 and targets Capellini
/// at δ > 0.7 (§5.2).
pub const GRANULARITY_THRESHOLD: f64 = 0.7;

/// Recommends the GPU algorithm for a matrix from its statistics — the
/// decision rule behind Figure 6's optimal-algorithm map: thread-level when
/// levels are wide and rows are sparse, warp-level otherwise.
///
/// The boundary is *strict*: the paper targets Capellini at δ **> 0.7**
/// (SyncFree's performance peaks at 0.7 itself), so δ = 0.7 exactly stays
/// with SyncFree. Degenerate systems (n ≤ 1) have no dependency structure
/// for warp-level scheduling to exploit and go to Writing-First, the
/// zero-preprocessing algorithm; a non-finite δ (Equation 1 degenerates on
/// pathological inputs) falls back conservatively to SyncFree.
pub fn recommend(stats: &MatrixStats) -> Algorithm {
    if stats.n <= 1 {
        return Algorithm::CapelliniWritingFirst;
    }
    if !stats.granularity.is_finite() {
        return Algorithm::SyncFree;
    }
    if stats.granularity > GRANULARITY_THRESHOLD {
        Algorithm::CapelliniWritingFirst
    } else {
        Algorithm::SyncFree
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capellini_sparse::gen;
    use capellini_sparse::{LowerTriangularCsr, MatrixStats};

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<&str> = Algorithm::all_live().iter().map(|a| a.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), Algorithm::all_live().len());
    }

    #[test]
    fn table2_matches_the_paper() {
        let rows = algorithm_traits();
        assert_eq!(rows[0].preprocessing, "high");
        assert_eq!(rows[1].storage, "CSC");
        assert_eq!(rows[3].preprocessing, "none");
        assert_eq!(rows[3].granularity, "thread");
    }

    #[test]
    fn recommendation_follows_granularity() {
        let wide = MatrixStats::compute(&gen::ultra_sparse_wide(20_000, 8, 1, 1));
        assert_eq!(recommend(&wide), Algorithm::CapelliniWritingFirst);
        let deep = MatrixStats::compute(&gen::dense_band(2_000, 32, 2));
        assert_eq!(recommend(&deep), Algorithm::SyncFree);
    }

    /// Synthetic statistics with every field but δ held at unremarkable
    /// values, for probing the decision boundary directly.
    fn stats_with_granularity(n: usize, granularity: f64) -> MatrixStats {
        MatrixStats {
            n,
            nnz: 3 * n,
            n_levels: 10.max(n / 10),
            nnz_row: 3.0,
            n_level: n as f64 / 10.0,
            granularity,
            max_level_width: n.div_ceil(10),
        }
    }

    /// Regression: δ exactly at the threshold must stay with SyncFree — the
    /// paper says Capellini *wins* at δ > 0.7, and SyncFree's performance
    /// peaks at 0.7 itself.
    #[test]
    fn threshold_boundary_is_strict() {
        let at = stats_with_granularity(5_000, GRANULARITY_THRESHOLD);
        assert_eq!(recommend(&at), Algorithm::SyncFree);
        let just_above = stats_with_granularity(5_000, GRANULARITY_THRESHOLD + 1e-12);
        assert_eq!(recommend(&just_above), Algorithm::CapelliniWritingFirst);
        let just_below = stats_with_granularity(5_000, GRANULARITY_THRESHOLD - 1e-12);
        assert_eq!(recommend(&just_below), Algorithm::SyncFree);
    }

    /// Regression: degenerate inputs must not fall through the δ comparison.
    #[test]
    fn degenerate_inputs_recommend_sanely() {
        // Empty system: MatrixStats reports δ = 0.0, but the rule must not
        // depend on that convention.
        let empty = LowerTriangularCsr::try_new(
            capellini_sparse::CsrMatrix::new(0, 0, vec![0], vec![], vec![]).unwrap(),
        )
        .unwrap();
        assert_eq!(
            recommend(&MatrixStats::compute(&empty)),
            Algorithm::CapelliniWritingFirst
        );
        // Single row: nothing to schedule, zero-preprocessing wins.
        assert_eq!(
            recommend(&MatrixStats::compute(&gen::diagonal(1))),
            Algorithm::CapelliniWritingFirst
        );
        // Non-finite δ (pathological Equation 1 inputs): conservative
        // warp-level fallback, never a panic or an accidental Capellini.
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(
                recommend(&stats_with_granularity(5_000, bad)),
                Algorithm::SyncFree
            );
        }
    }
}
