//! Algorithm selection: the enumeration of every SpTRSV implementation in
//! this library, the Table 2 property summary, the granularity-based
//! recommendation rule extracted from the paper's Figure 6, and the
//! cost-aware reuse rule that weighs the scheduled kernel's analysis cost
//! against its predicted execution win.

use capellini_simt::CacheConfig;
use capellini_sparse::{MatrixStats, ScheduleStats};

/// Every SpTRSV algorithm this library implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Algorithm 2: level-sets with one launch per level.
    LevelSet,
    /// Algorithm 3: warp-level synchronization-free (Liu et al. [20]).
    SyncFree,
    /// Liu et al.'s original CSC scatter formulation (warp per column,
    /// atomics + in-degree countdown).
    SyncFreeCsc,
    /// The cuSPARSE black-box stand-in (§2.4).
    CusparseLike,
    /// Algorithm 4: Two-Phase CapelliniSpTRSV.
    CapelliniTwoPhase,
    /// Algorithm 5: Writing-First CapelliniSpTRSV (the headline algorithm).
    CapelliniWritingFirst,
    /// The §3.3 straw man (deadlocks on intra-warp dependencies).
    NaiveThread,
    /// §4.4 warp/thread hybrid.
    Hybrid,
    /// Level-coarsened, load-balanced work units with per-unit flags
    /// (arXiv 2503.05408; ROADMAP 5(a)).
    Scheduled,
}

impl Algorithm {
    /// Display label matching the paper's naming.
    pub fn label(self) -> &'static str {
        match self {
            Algorithm::LevelSet => "Level-Set",
            Algorithm::SyncFree => "SyncFree",
            Algorithm::SyncFreeCsc => "SyncFree-CSC",
            Algorithm::CusparseLike => "cuSPARSE",
            Algorithm::CapelliniTwoPhase => "Capellini (Two-Phase)",
            Algorithm::CapelliniWritingFirst => "Capellini",
            Algorithm::NaiveThread => "Naive thread-level",
            Algorithm::Hybrid => "Hybrid (warp+thread)",
            Algorithm::Scheduled => "Scheduled (coarsened units)",
        }
    }

    /// This algorithm's Table 2-style property row (the paper's table only
    /// covers four algorithms; this extends the same vocabulary to all of
    /// them, for `sptrsv --list-algos`).
    pub fn trait_row(self) -> TraitRow {
        let (preprocessing, storage, synchronization, granularity) = match self {
            Algorithm::LevelSet => ("high", "CSR", "yes", "thread/warp"),
            Algorithm::SyncFree => ("low", "CSC", "no", "warp"),
            Algorithm::SyncFreeCsc => ("low", "CSC", "no", "warp"),
            Algorithm::CusparseLike => ("low", "CSR", "unknown", "unknown"),
            Algorithm::CapelliniTwoPhase => ("none", "CSR", "no", "thread"),
            Algorithm::CapelliniWritingFirst => ("none", "CSR", "no", "thread"),
            Algorithm::NaiveThread => ("none", "CSR", "no", "thread"),
            Algorithm::Hybrid => ("low", "CSR", "no", "warp+thread"),
            Algorithm::Scheduled => ("high", "CSR", "no", "warp per unit"),
        };
        TraitRow {
            algorithm: self.label(),
            preprocessing,
            storage,
            synchronization,
            granularity,
        }
    }

    /// The three algorithms of the paper's headline comparison (Tables 4-5).
    pub fn evaluation_trio() -> [Algorithm; 3] {
        [
            Algorithm::SyncFree,
            Algorithm::CusparseLike,
            Algorithm::CapelliniWritingFirst,
        ]
    }

    /// All live algorithms (excludes the deadlocking straw man).
    pub fn all_live() -> [Algorithm; 8] {
        [
            Algorithm::LevelSet,
            Algorithm::SyncFree,
            Algorithm::SyncFreeCsc,
            Algorithm::CusparseLike,
            Algorithm::CapelliniTwoPhase,
            Algorithm::CapelliniWritingFirst,
            Algorithm::Hybrid,
            Algorithm::Scheduled,
        ]
    }
}

/// One row of the paper's Table 2 ("Summary for different SpTRSV
/// algorithms").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraitRow {
    /// Algorithm name.
    pub algorithm: &'static str,
    /// Preprocessing overhead.
    pub preprocessing: &'static str,
    /// Storage format consumed.
    pub storage: &'static str,
    /// Whether inter-level synchronization is required.
    pub synchronization: &'static str,
    /// Processing granularity.
    pub granularity: &'static str,
}

/// The rows of Table 2, in the paper's order.
pub fn algorithm_traits() -> [TraitRow; 4] {
    [
        TraitRow {
            algorithm: "Level-Set",
            preprocessing: "high",
            storage: "CSR",
            synchronization: "yes",
            granularity: "thread/warp",
        },
        TraitRow {
            algorithm: "Sync-Free",
            preprocessing: "low",
            storage: "CSC",
            synchronization: "no",
            granularity: "warp",
        },
        TraitRow {
            algorithm: "cuSPARSE",
            preprocessing: "low",
            storage: "CSR",
            synchronization: "unknown",
            granularity: "unknown",
        },
        TraitRow {
            algorithm: "CapelliniSpTRSV",
            preprocessing: "none",
            storage: "CSR",
            synchronization: "no",
            granularity: "thread",
        },
    ]
}

/// The granularity threshold above which CapelliniSpTRSV is preferred: the
/// paper observes SyncFree's performance peaks at 0.7 and targets Capellini
/// at δ > 0.7 (§5.2).
pub const GRANULARITY_THRESHOLD: f64 = 0.7;

/// Recommends the GPU algorithm for a matrix from its statistics — the
/// decision rule behind Figure 6's optimal-algorithm map: thread-level when
/// levels are wide and rows are sparse, warp-level otherwise.
///
/// The boundary is *strict*: the paper targets Capellini at δ **> 0.7**
/// (SyncFree's performance peaks at 0.7 itself), so δ = 0.7 exactly stays
/// with SyncFree. Degenerate systems (n ≤ 1) have no dependency structure
/// for warp-level scheduling to exploit and go to Writing-First, the
/// zero-preprocessing algorithm; a non-finite δ (Equation 1 degenerates on
/// pathological inputs) falls back conservatively to SyncFree.
pub fn recommend(stats: &MatrixStats) -> Algorithm {
    if stats.n <= 1 {
        return Algorithm::CapelliniWritingFirst;
    }
    if !stats.granularity.is_finite() {
        return Algorithm::SyncFree;
    }
    if stats.granularity > GRANULARITY_THRESHOLD {
        Algorithm::CapelliniWritingFirst
    } else {
        Algorithm::SyncFree
    }
}

/// Nominal simulated clock used to convert predicted cycles into the same
/// milliseconds the host cost model charges for preprocessing (1 GHz).
pub const NOMINAL_CYCLES_PER_MS: f64 = 1.0e6;

/// Per-round synchronization overhead the scheduled kernel removes from the
/// critical path: one `__threadfence` (40 cycles on the modelled devices)
/// plus the spin rounds a consumer burns discovering the published flag.
const ROUND_SYNC_CYCLES: f64 = 64.0;

/// What one staged off-diagonal costs on a sequential unit's single
/// resolving lane (phase-B shared walk plus the forwarded `x` load) — work
/// a warp-per-row baseline spreads across its lanes instead.
const SEQ_DEP_CYCLES: f64 = 210.0;

/// Off-diagonals per row that serializing costs nothing extra: a
/// warp-per-row kernel's fixed per-row overhead (poll, reduction, fence)
/// dwarfs a handful of dependency walks, so only the excess beyond this
/// many is charged against sequential units.
const SEQ_FREE_DEPS: f64 = 4.0;

/// The verdict of the cost-aware reuse rule ([`recommend_for_reuse`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostAwareChoice {
    /// The algorithm to use for this session.
    pub algorithm: Algorithm,
    /// What the paper's δ rule alone would have picked.
    pub baseline: Algorithm,
    /// Predicted per-solve execution win of Scheduled over the baseline, in
    /// nominal milliseconds (may be ≤ 0 when coarsening finds nothing).
    pub predicted_win_ms: f64,
    /// The schedule's analysis cost, in milliseconds (measured by the
    /// session, or charged by the host cost model on cold paths).
    pub analysis_ms: f64,
    /// Warm solves needed to amortize the analysis (`∞` when the predicted
    /// win is not positive).
    pub breakeven_solves: f64,
}

/// The cost-aware selection rule: picks [`Algorithm::Scheduled`] only when
/// its predicted execution win, accumulated over the session's expected
/// solve count, exceeds the measured analysis cost; otherwise falls back to
/// the paper's δ rule ([`recommend`]).
///
/// The win model is deliberately transparent (DESIGN.md §14): coarsening
/// shortens the synchronization critical path from `n_levels` rounds to
/// [`ScheduleStats::depth`] rounds, each worth [`ROUND_SYNC_CYCLES`]; the
/// per-row fence/flag/poll traffic eliminated off the critical path
/// ([`ScheduleStats::saved_syncs`]) is credited at one issue slot per saved
/// operation, spread across the machine's width. Against those wins it
/// charges the serialization cost of sequential units on fat-row matrices
/// ([`SEQ_DEP_CYCLES`] per off-diagonal beyond [`SEQ_FREE_DEPS`]): a dense
/// band coarsens beautifully on paper but resolves every dependency on one
/// lane, and the rule must not recommend that. When a finite cache is
/// armed, coarsened units walk contiguous rows, so the value/index streams
/// predictably hit L1 (4 doubles per 32-byte sector → ≥ 3/4 hit rate); the
/// win is credited the saved miss latency on that fraction of the stream.
pub fn recommend_for_reuse(
    stats: &MatrixStats,
    sched: &ScheduleStats,
    analysis_ms: f64,
    expected_solves: u32,
    cache: Option<&CacheConfig>,
) -> CostAwareChoice {
    let baseline = recommend(stats);
    // Critical-path rounds removed by merging narrow-level runs.
    let depth_win = (stats.n_levels.saturating_sub(sched.depth)) as f64 * ROUND_SYNC_CYCLES;
    // Off-critical-path sync traffic removed (fence + flag store + poll per
    // row, overlapped across the device's parallel width).
    let width = stats.n_level.max(1.0);
    let traffic_win = sched.saved_syncs as f64 * ROUND_SYNC_CYCLES / width;
    // Sequential units resolve fat rows' dependency walks on one lane —
    // work a warp-per-row baseline spreads across its lanes. Charge the
    // off-diagonals beyond what the baseline's fixed per-row overhead
    // absorbs, over the rows living in sequential units.
    let seq_rows = sched.coarsening * sched.n_seq_units as f64;
    let excess_deps = ((stats.nnz_row - 1.0) - SEQ_FREE_DEPS).max(0.0);
    let seq_penalty = seq_rows * excess_deps * SEQ_DEP_CYCLES;
    let mut win_cycles = depth_win + traffic_win - seq_penalty;
    if let Some(c) = cache {
        // Contiguous intra-unit rows: the 8-byte value stream packs 4 words
        // per 32-byte sector, so ~3/4 of its loads hit L1 instead of paying
        // the L2 round trip. Credit those cycles across the machine width.
        let l2_latency = 2 * c.l1_latency;
        let hit_fraction = 0.75;
        win_cycles += stats.nnz as f64 * hit_fraction * (l2_latency - c.l1_latency) as f64 / width;
    }
    let predicted_win_ms = win_cycles / NOMINAL_CYCLES_PER_MS;
    let breakeven_solves = if predicted_win_ms > 0.0 {
        analysis_ms / predicted_win_ms
    } else {
        f64::INFINITY
    };
    let algorithm =
        if predicted_win_ms > 0.0 && expected_solves as f64 * predicted_win_ms > analysis_ms {
            Algorithm::Scheduled
        } else {
            baseline
        };
    CostAwareChoice {
        algorithm,
        baseline,
        predicted_win_ms,
        analysis_ms,
        breakeven_solves,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capellini_sparse::gen;
    use capellini_sparse::{LowerTriangularCsr, MatrixStats};

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<&str> = Algorithm::all_live().iter().map(|a| a.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), Algorithm::all_live().len());
    }

    #[test]
    fn table2_matches_the_paper() {
        let rows = algorithm_traits();
        assert_eq!(rows[0].preprocessing, "high");
        assert_eq!(rows[1].storage, "CSC");
        assert_eq!(rows[3].preprocessing, "none");
        assert_eq!(rows[3].granularity, "thread");
    }

    #[test]
    fn recommendation_follows_granularity() {
        let wide = MatrixStats::compute(&gen::ultra_sparse_wide(20_000, 8, 1, 1));
        assert_eq!(recommend(&wide), Algorithm::CapelliniWritingFirst);
        let deep = MatrixStats::compute(&gen::dense_band(2_000, 32, 2));
        assert_eq!(recommend(&deep), Algorithm::SyncFree);
    }

    /// Synthetic statistics with every field but δ held at unremarkable
    /// values, for probing the decision boundary directly.
    fn stats_with_granularity(n: usize, granularity: f64) -> MatrixStats {
        MatrixStats {
            n,
            nnz: 3 * n,
            n_levels: 10.max(n / 10),
            nnz_row: 3.0,
            n_level: n as f64 / 10.0,
            granularity,
            max_level_width: n.div_ceil(10),
        }
    }

    /// Regression: δ exactly at the threshold must stay with SyncFree — the
    /// paper says Capellini *wins* at δ > 0.7, and SyncFree's performance
    /// peaks at 0.7 itself.
    #[test]
    fn threshold_boundary_is_strict() {
        let at = stats_with_granularity(5_000, GRANULARITY_THRESHOLD);
        assert_eq!(recommend(&at), Algorithm::SyncFree);
        let just_above = stats_with_granularity(5_000, GRANULARITY_THRESHOLD + 1e-12);
        assert_eq!(recommend(&just_above), Algorithm::CapelliniWritingFirst);
        let just_below = stats_with_granularity(5_000, GRANULARITY_THRESHOLD - 1e-12);
        assert_eq!(recommend(&just_below), Algorithm::SyncFree);
    }

    #[test]
    fn every_live_algorithm_has_a_trait_row() {
        for a in Algorithm::all_live() {
            let row = a.trait_row();
            assert_eq!(row.algorithm, a.label());
            assert!(!row.preprocessing.is_empty());
            assert!(!row.storage.is_empty());
        }
        // The new kernel pays level-set-class preprocessing but needs no
        // inter-level kernel relaunches.
        let sched = Algorithm::Scheduled.trait_row();
        assert_eq!(sched.preprocessing, "high");
        assert_eq!(sched.synchronization, "no");
        assert_eq!(sched.granularity, "warp per unit");
    }

    /// A deep, chain-shaped profile: 2000 levels that coarsening collapses
    /// into one sequential unit.
    fn chain_profile() -> (MatrixStats, ScheduleStats) {
        let stats = MatrixStats {
            n: 2_000,
            nnz: 3_999,
            n_levels: 2_000,
            nnz_row: 2.0,
            n_level: 1.0,
            granularity: 0.3,
            max_level_width: 1,
        };
        let sched = ScheduleStats {
            n_units: 1,
            n_seq_units: 1,
            n_par_units: 0,
            n_deppar_units: 0,
            depth: 1,
            max_unit_rows: 2_000,
            coarsening: 2_000.0,
            saved_syncs: 1_999,
        };
        (stats, sched)
    }

    /// The cost-aware rule only upgrades to Scheduled once the expected
    /// reuse amortizes the analysis cost.
    #[test]
    fn cost_aware_rule_requires_amortization() {
        let (stats, sched) = chain_profile();
        let analysis_ms = 1.0;
        let cold = recommend_for_reuse(&stats, &sched, analysis_ms, 1, None);
        assert_ne!(cold.algorithm, Algorithm::Scheduled);
        assert_eq!(cold.algorithm, cold.baseline);
        assert!(cold.predicted_win_ms > 0.0);
        assert!(cold.breakeven_solves > 1.0);
        // Enough warm solves to cross the breakeven: upgrade.
        let warm = recommend_for_reuse(
            &stats,
            &sched,
            analysis_ms,
            cold.breakeven_solves.ceil() as u32 + 1,
            None,
        );
        assert_eq!(warm.algorithm, Algorithm::Scheduled);
        assert_eq!(warm.baseline, cold.baseline);
    }

    /// When coarsening finds nothing (already one wide level), the rule
    /// sticks with the paper's δ recommendation at modest reuse.
    #[test]
    fn cost_aware_rule_keeps_baseline_without_coarsening_win() {
        let stats = MatrixStats {
            n: 1_000,
            nnz: 1_000,
            n_levels: 1,
            nnz_row: 1.0,
            n_level: 1_000.0,
            granularity: 0.9,
            max_level_width: 1_000,
        };
        let sched = ScheduleStats {
            n_units: 32,
            n_seq_units: 0,
            n_par_units: 32,
            n_deppar_units: 32,
            depth: 1,
            max_unit_rows: 32,
            coarsening: 31.25,
            saved_syncs: 968,
        };
        let c = recommend_for_reuse(&stats, &sched, 0.05, 10, None);
        assert_eq!(c.algorithm, c.baseline);
        assert_eq!(c.baseline, Algorithm::CapelliniWritingFirst);
        // A degenerate empty schedule can never win.
        let empty = ScheduleStats {
            n_units: 0,
            n_seq_units: 0,
            n_par_units: 0,
            n_deppar_units: 0,
            depth: 0,
            max_unit_rows: 0,
            coarsening: 0.0,
            saved_syncs: 0,
        };
        let stats0 = MatrixStats {
            n: 0,
            nnz: 0,
            n_levels: 0,
            nnz_row: 0.0,
            n_level: 0.0,
            granularity: 0.0,
            max_level_width: 0,
        };
        let c0 = recommend_for_reuse(&stats0, &empty, 0.0, 1_000, None);
        assert_eq!(c0.algorithm, c0.baseline);
        assert!(c0.breakeven_solves.is_infinite());
    }

    /// An armed cache raises the predicted win (contiguous intra-unit rows
    /// hit L1), never lowers it.
    #[test]
    fn armed_cache_raises_the_predicted_win() {
        let (stats, sched) = chain_profile();
        let plain = recommend_for_reuse(&stats, &sched, 1.0, 4, None);
        let cached = recommend_for_reuse(
            &stats,
            &sched,
            1.0,
            4,
            Some(&capellini_simt::CacheConfig::small()),
        );
        assert!(cached.predicted_win_ms > plain.predicted_win_ms);
        assert!(cached.breakeven_solves < plain.breakeven_solves);
    }

    /// A dense band coarsens spectacularly on paper (one Seq unit, depth
    /// 2000 → 1) but resolves ~30 dependencies per row on a single lane;
    /// the rule must charge that serialization and refuse the upgrade no
    /// matter how much reuse is promised.
    #[test]
    fn fat_band_serialization_blocks_the_upgrade() {
        let l = gen::dense_band(2_000, 30, 3);
        let stats = MatrixStats::compute(&l);
        let levels = capellini_sparse::LevelSets::analyze(&l);
        let sched = capellini_sparse::Schedule::build_default(&l, &levels, 32).stats();
        assert_eq!(sched.n_seq_units, 1);
        let c = recommend_for_reuse(&stats, &sched, 0.5, 10_000, None);
        assert!(
            c.predicted_win_ms <= 0.0,
            "win {} must be ≤ 0",
            c.predicted_win_ms
        );
        assert_ne!(c.algorithm, Algorithm::Scheduled);
        assert!(c.breakeven_solves.is_infinite());
    }

    /// Regression: degenerate inputs must not fall through the δ comparison.
    #[test]
    fn degenerate_inputs_recommend_sanely() {
        // Empty system: MatrixStats reports δ = 0.0, but the rule must not
        // depend on that convention.
        let empty = LowerTriangularCsr::try_new(
            capellini_sparse::CsrMatrix::new(0, 0, vec![0], vec![], vec![]).unwrap(),
        )
        .unwrap();
        assert_eq!(
            recommend(&MatrixStats::compute(&empty)),
            Algorithm::CapelliniWritingFirst
        );
        // Single row: nothing to schedule, zero-preprocessing wins.
        assert_eq!(
            recommend(&MatrixStats::compute(&gen::diagonal(1))),
            Algorithm::CapelliniWritingFirst
        );
        // Non-finite δ (pathological Equation 1 inputs): conservative
        // warp-level fallback, never a panic or an accidental Capellini.
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(
                recommend(&stats_with_granularity(5_000, bad)),
                Algorithm::SyncFree
            );
        }
    }
}
