//! Transient circuit simulation: one factorization, thousands of triangular
//! solves. This is where preprocessing cost matters (the paper's Table 1
//! argument): Level-Set amortizes poorly at small step counts, while
//! CapelliniSpTRSV starts paying off from the very first solve.
//!
//! ```text
//! cargo run --release --example circuit_transient
//! ```

use capellini_sptrsv::core::Algorithm;
use capellini_sptrsv::prelude::*;

fn main() {
    // A circuit-shaped factor: rails, local couplings, shallow levels.
    let l = gen::circuit_like(20_000, 5, 600, 7);
    let stats = MatrixStats::compute(&l);
    println!(
        "circuit factor: n = {}, nnz = {}, nnz/row = {:.2}, granularity = {:.3}\n",
        stats.n, stats.nnz, stats.nnz_row, stats.granularity
    );

    let device = DeviceConfig::pascal_like().scaled_down(4);
    let b: Vec<f64> = (0..l.n()).map(|i| ((i % 13) as f64 - 6.0) * 1e-3).collect();

    println!(
        "{:<22} {:>14} {:>12} {:>16} {:>16}",
        "algorithm", "preprocess ms", "solve ms", "10 steps (ms)", "1000 steps (ms)"
    );
    for algo in [
        Algorithm::LevelSet,
        Algorithm::SyncFree,
        Algorithm::CusparseLike,
        Algorithm::CapelliniWritingFirst,
    ] {
        let rep = capellini_sptrsv::core::solve_simulated(&device, &l, &b, algo)
            .expect("all algorithms solve a circuit factor");
        // Preprocessing runs once; every transient step repeats the solve.
        let total = |steps: f64| rep.preprocessing_ms + steps * rep.exec_ms;
        println!(
            "{:<22} {:>14.3} {:>12.3} {:>16.2} {:>16.2}",
            algo.label(),
            rep.preprocessing_ms,
            rep.exec_ms,
            total(10.0),
            total(1000.0)
        );
    }

    println!(
        "\nCapelliniSpTRSV needs no analysis phase, so it leads at every step count;\nLevel-Set's analysis only amortizes if the factor is reused many times *and*\nits per-solve time is competitive (it is not on shallow circuit DAGs)."
    );
}
