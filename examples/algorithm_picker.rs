//! The Figure-6 decision rule in action: scan matrices from different
//! domains, print their (α, β, δ) statistics, the rule's recommendation,
//! and the *measured* winner between thread-level CapelliniSpTRSV and
//! warp-level SyncFree on the simulated GPU.
//!
//! ```text
//! cargo run --release --example algorithm_picker
//! ```

use capellini_sptrsv::core::{solve_simulated, Algorithm};
use capellini_sptrsv::prelude::*;

fn main() {
    let matrices: Vec<(&str, LowerTriangularCsr)> = vec![
        ("social graph (power-law)", gen::powerlaw(16_000, 2.5, 1)),
        (
            "LP factor (2 levels)",
            gen::ultra_sparse_wide(16_000, 16, 1, 2),
        ),
        (
            "circuit (rails + couplings)",
            gen::circuit_like(16_000, 4, 800, 3),
        ),
        ("3-D stencil (nlpkkt-like)", gen::stencil3d(24, 24, 24, 4)),
        ("FEM band (cant-like)", gen::dense_band(6_000, 32, 5)),
        ("layered combinatorial", gen::layered(16_000, 2, 4, 6)),
    ];
    let device = DeviceConfig::pascal_like().scaled_down(4);

    println!(
        "{:<28} {:>8} {:>9} {:>7} {:<12} {:>10} {:>10} {:<10}",
        "matrix", "nnz/row", "cmp/level", "delta", "recommends", "Cap GF/s", "SF GF/s", "winner"
    );
    let mut rule_hits = 0usize;
    for (name, l) in &matrices {
        let stats = MatrixStats::compute(l);
        let pick = capellini_sptrsv::core::recommend(&stats);
        let b: Vec<f64> = (0..l.n()).map(|i| (i % 5) as f64).collect();
        let cap = solve_simulated(&device, l, &b, Algorithm::CapelliniWritingFirst)
            .expect("capellini solves")
            .gflops;
        let sf = solve_simulated(&device, l, &b, Algorithm::SyncFree)
            .expect("syncfree solves")
            .gflops;
        let winner = if cap > sf {
            Algorithm::CapelliniWritingFirst
        } else {
            Algorithm::SyncFree
        };
        if winner == pick {
            rule_hits += 1;
        }
        println!(
            "{:<28} {:>8.2} {:>9.1} {:>7.2} {:<12} {:>10.2} {:>10.2} {:<10}",
            name,
            stats.nnz_row,
            stats.n_level,
            stats.granularity,
            short(pick),
            cap,
            sf,
            short(winner)
        );
    }
    println!(
        "\nthe granularity rule picked the measured winner on {rule_hits}/{} matrices",
        matrices.len()
    );
}

fn short(a: Algorithm) -> &'static str {
    match a {
        Algorithm::CapelliniWritingFirst => "Capellini",
        Algorithm::SyncFree => "SyncFree",
        other => other.label(),
    }
}
