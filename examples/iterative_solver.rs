//! Iterative solvers driven by SpTRSV — the paper's motivating use case
//! ("preconditioners of sparse iterative solvers"): every Gauss–Seidel/SOR
//! sweep is one sparse triangular solve, and SSOR-preconditioned CG applies
//! a forward and a backward sweep per iteration.
//!
//! ```text
//! cargo run --release --example iterative_solver
//! ```

use capellini_sptrsv::core::{gauss_seidel, pcg_ssor, solve_simulated, sor, Algorithm};
use capellini_sptrsv::prelude::*;
use capellini_sptrsv::sparse::CsrMatrix;

fn main() {
    // A symmetric, diagonally dominant system on a graph-shaped pattern.
    let n = 12_000;
    let pattern = gen::powerlaw(n, 3.0, 99);
    let mut coo = CooMatrix::new(n, n);
    for (r, c, v) in pattern.csr().iter() {
        if c < r {
            coo.push(r, c, 0.4 * v);
            coo.push(c, r, 0.4 * v);
        }
    }
    // Strict diagonal dominance by construction (hub rows of a power-law
    // pattern otherwise overwhelm a fixed diagonal): a_ii = 1 + sum|a_ij|.
    coo.compress();
    let off = CsrMatrix::from_coo(&coo);
    let mut coo = off.to_coo();
    for i in 0..n {
        let (_, vals) = off.row(i);
        let row_sum: f64 = vals.iter().map(|v| v.abs()).sum();
        coo.push(i as u32, i as u32, 1.0 + row_sum);
    }
    let a = CsrMatrix::from_coo(&coo);
    let x_true: Vec<f64> = (0..n).map(|i| ((i % 7) as f64) - 3.0).collect();
    let b = linalg::spmv(&a, &x_true);
    println!("system: n = {n}, nnz = {}", a.nnz());

    // What one sweep costs on the simulated GPU (this is the kernel the
    // paper accelerates).
    let (lower, _) = capellini_sptrsv::core::iterative::gauss_seidel_split(&a)
        .expect("diagonally dominant system splits");
    let stats = MatrixStats::compute(&lower);
    let device = DeviceConfig::pascal_like().scaled_down(4);
    let rep = solve_simulated(&device, &lower, &b, Algorithm::CapelliniWritingFirst)
        .expect("sweep solves");
    println!(
        "sweep matrix granularity {:.2}; one sweep on the simulated GPU: {:.3} ms, {:.2} GFLOPS\n",
        stats.granularity, rep.exec_ms, rep.gflops
    );

    // Three iterative methods, all built on the CPU thread-level SpTRSV.
    let gs = gauss_seidel(&a, &b, 1e-10, 500, 4).expect("valid system");
    report("Gauss-Seidel", &gs, &x_true);
    let sr = sor(&a, &b, 1.2, 1e-10, 500, 4).expect("valid system");
    report("SOR (omega = 1.2)", &sr, &x_true);
    let cg = pcg_ssor(&a, &b, 1e-10, 100, 4).expect("valid system");
    report("SSOR-preconditioned CG", &cg, &x_true);
}

fn report(name: &str, out: &capellini_sptrsv::core::IterResult, x_true: &[f64]) {
    let err = out
        .x
        .iter()
        .zip(x_true)
        .map(|(a, e)| (a - e).abs())
        .fold(0.0f64, f64::max);
    println!(
        "{name:<24} {} iterations, residual {:.2e}, max error {:.2e}{}",
        out.iterations,
        out.residual,
        err,
        if out.converged {
            ""
        } else {
            "  (NOT converged)"
        }
    );
    assert!(out.converged, "{name} must converge on this system");
}
