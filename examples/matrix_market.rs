//! Matrix Market interoperability: write a generated system to `.mtx`,
//! read it back, extract the unit-lower-triangular factor exactly as the
//! paper prepares SuiteSparse matrices (§5.1), and solve.
//!
//! ```text
//! cargo run --release --example matrix_market
//! ```

use capellini_sptrsv::prelude::*;
use capellini_sptrsv::sparse::io;
use capellini_sptrsv::sparse::CsrMatrix;

fn main() {
    // A general (non-triangular) matrix: symmetrized graph adjacency.
    let lower = gen::powerlaw(4_000, 3.0, 11);
    let mut coo = CooMatrix::new(lower.n(), lower.n());
    for (r, c, v) in lower.csr().iter() {
        coo.push(r, c, v);
        if r != c {
            coo.push(c, r, v * 0.5);
        }
    }
    let general = CsrMatrix::from_coo(&coo);

    // Round-trip through the Matrix Market format.
    let mtx = io::to_matrix_market_string(&general);
    println!("matrix market header + size line:");
    for line in mtx.lines().take(3) {
        println!("  {line}");
    }
    let parsed = CsrMatrix::from_coo(&io::parse_matrix_market(&mtx).expect("own output parses"));
    assert_eq!(parsed, general);
    println!(
        "round trip: {} rows, {} nonzeros, bit-identical\n",
        parsed.n_rows(),
        parsed.nnz()
    );

    // The paper's dataset rule: keep the lower-left entries, unit diagonal.
    let l = LowerTriangularCsr::unit_lower_from(&parsed).expect("square matrix");
    let stats = MatrixStats::compute(&l);
    println!(
        "unit-lower factor: nnz = {}, levels = {}, granularity = {:.3}",
        stats.nnz, stats.n_levels, stats.granularity
    );

    let b: Vec<f64> = (0..l.n()).map(|i| (i % 9) as f64 - 4.0).collect();
    let solver = Solver::new(l);
    let report = solver
        .solve_simulated(&DeviceConfig::turing_like().scaled_down(4), &b)
        .expect("solve succeeds");
    let x_ref = solver.solve_serial(&b);
    linalg::assert_solutions_close(&report.x, &x_ref, 1e-11);
    println!(
        "solved with {} in {:.3} ms (simulated Turing), verified against Algorithm 1",
        report.algorithm.label(),
        report.exec_ms
    );
}
