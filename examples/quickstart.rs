//! Quickstart: build a sparse lower-triangular system, inspect the paper's
//! matrix statistics, pick an algorithm, solve on a simulated GPU, and
//! verify the answer.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use capellini_sptrsv::prelude::*;

fn main() {
    // 1. A graph-shaped system: 20k unknowns, power-law dependencies —
    //    the high-granularity regime the paper targets.
    let l = gen::powerlaw(20_000, 3.0, 42);
    let stats = MatrixStats::compute(&l);
    println!("matrix: n = {}, nnz = {}", stats.n, stats.nnz);
    println!(
        "stats:  nnz/row = {:.2}, components/level = {:.1}, levels = {}, granularity = {:.3}",
        stats.nnz_row, stats.n_level, stats.n_levels, stats.granularity
    );

    // 2. A right-hand side with a known exact solution.
    let x_true: Vec<f64> = (0..l.n()).map(|i| (i % 10) as f64 - 4.5).collect();
    let b = linalg::rhs_for_solution(&l, &x_true);

    // 3. The Solver facade recommends an algorithm from the granularity
    //    (Figure 6's decision rule) and runs it on a simulated GPU.
    let solver = Solver::new(l);
    let algo = solver.recommend();
    println!("recommended algorithm: {}", algo.label());

    let device = DeviceConfig::pascal_like().scaled_down(4);
    let report = solver.solve_simulated(&device, &b).expect("solve succeeds");
    println!(
        "simulated solve: {:.3} ms, {:.2} GFLOPS, {:.1} GB/s, {} warp instructions",
        report.exec_ms, report.gflops, report.bandwidth_gbs, report.stats.warp_instructions
    );

    // 4. Verify against the exact solution and the serial reference.
    let worst = report
        .x
        .iter()
        .zip(&x_true)
        .map(|(a, e)| (a - e).abs())
        .fold(0.0f64, f64::max);
    println!("max abs error vs exact solution: {worst:.3e}");
    assert!(worst < 1e-9);

    // 5. The same solve natively on CPU threads (the busy-wait analog).
    let x_cpu = solver.solve_cpu(&b, 4);
    linalg::assert_solutions_close(&x_cpu, &report.x, 1e-10);
    println!("CPU self-scheduled solve agrees with the simulated GPU solve.");
}
