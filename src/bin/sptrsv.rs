//! `sptrsv` — command-line sparse triangular solver.
//!
//! ```text
//! sptrsv solve   --matrix L.mtx [--rhs b.txt] [--algo capellini|syncfree|syncfree-csc|cusparse|levelset|two-phase|hybrid|scheduled|auto]
//!                [--device pascal|volta|turing] [--engine-threads N] [--cache]
//!                [--devices N [--link pcie|nvlink]]
//!                [--rhs-cols K] [--session N]
//!                [--profile trace.json [--profile-interval N]]
//!                [--cpu [THREADS]] [--out x.txt]
//! sptrsv stats   --matrix L.mtx
//! sptrsv --list-algos
//! sptrsv gen     --kind powerlaw|circuit|stencil|lp|band --n N --out L.mtx [--seed S]
//! sptrsv serve   --matrix L.mtx [--clients N] [--requests N] [--window MS] [--max-batch K]
//!                [--device pascal|volta|turing]
//! ```
//!
//! `solve` reads a Matrix Market file, extracts the unit-lower factor the
//! way the paper prepares its dataset (keep lower-left entries, unit
//! diagonal) unless the matrix already is lower-triangular, then solves on
//! the simulated GPU (or natively on CPU threads with `--cpu`) and reports
//! the paper's metrics.

use std::fs;
use std::io::BufReader;
use std::process::exit;

use capellini_sptrsv::core::{
    solve_multi_simulated, solve_sharded, solve_simulated, Algorithm, MatrixHandle, ServiceConfig,
    ShardConfig, Solver, SolverService, SolverSession,
};
use capellini_sptrsv::prelude::*;
use capellini_sptrsv::simt::MAX_DEVICES;
use capellini_sptrsv::sparse::{io as mmio, CsrMatrix};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage();
        exit(2);
    };
    match cmd.as_str() {
        "solve" => cmd_solve(&args[1..]),
        "stats" => cmd_stats(&args[1..]),
        "gen" => cmd_gen(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "--list-algos" => list_algos(),
        _ => {
            usage();
            exit(2);
        }
    }
}

fn usage() {
    eprintln!(
        "usage:\n  sptrsv solve --matrix L.mtx [--rhs b.txt] [--algo NAME|auto] [--device pascal|volta|turing] [--engine-threads N] [--cache] [--devices N [--link pcie|nvlink]] [--rhs-cols K] [--session N] [--profile trace.json [--profile-interval N]] [--cpu [THREADS]] [--out x.txt]\n  sptrsv stats --matrix L.mtx\n  sptrsv gen --kind powerlaw|circuit|stencil|lp|band --n N --out L.mtx [--seed S]\n  sptrsv serve --matrix L.mtx [--clients N] [--requests N] [--window MS] [--max-batch K] [--device pascal|volta|turing]\n  sptrsv --list-algos\n\nbatching:\n  --rhs-cols K  solve K right-hand sides per launch (SpTRSM); column r scales the base rhs by r+1\n  --session N   analyze once, then run N warm solves through the cached SolverSession\n\nserving:\n  --clients N   concurrent client threads hammering the solver service (default 4)\n  --requests N  requests per client (default 8)\n  --window MS   coalesce window in milliseconds; 0 disables batching (default 3)\n  --max-batch K cap on right-hand sides per coalesced launch (default 8)\n\nsimulation:\n  --engine-threads N  advance the simulated SMs on N host threads (identical output, faster wall-clock)\n  --cache             model a finite per-SM L1 + shared L2 for read-only loads and report hit rates\n  --devices N         shard the solve across N simulated devices (1..=8) joined by a modeled interconnect\n  --link KIND         interconnect class for --devices: pcie (default) or nvlink"
    );
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn load_matrix(args: &[String]) -> LowerTriangularCsr {
    let Some(path) = flag_value(args, "--matrix") else {
        eprintln!("--matrix is required");
        exit(2);
    };
    let file = fs::File::open(path).unwrap_or_else(|e| {
        eprintln!("cannot open {path}: {e}");
        exit(1);
    });
    let coo = mmio::read_matrix_market(BufReader::new(file)).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        exit(1);
    });
    let csr = CsrMatrix::from_coo(&coo);
    match LowerTriangularCsr::try_new(csr.clone()) {
        Ok(l) => l,
        Err(_) => {
            eprintln!("note: matrix is not lower-triangular; extracting the unit-lower factor (paper 5.1 rule)");
            LowerTriangularCsr::unit_lower_from(&csr).unwrap_or_else(|e| {
                eprintln!("cannot build a triangular factor: {e}");
                exit(1);
            })
        }
    }
}

fn cmd_stats(args: &[String]) {
    let l = load_matrix(args);
    print!("{}", capellini_sptrsv::sparse::diagnostics::report(&l));
    let s = MatrixStats::compute(&l);
    let rec = capellini_sptrsv::core::recommend(&s);
    println!("\nrecommended algorithm = {}", rec.label());
}

fn parse_algo(name: &str) -> Option<Algorithm> {
    Some(match name {
        "capellini" | "writing-first" => Algorithm::CapelliniWritingFirst,
        "two-phase" => Algorithm::CapelliniTwoPhase,
        "syncfree" => Algorithm::SyncFree,
        "syncfree-csc" => Algorithm::SyncFreeCsc,
        "cusparse" => Algorithm::CusparseLike,
        "levelset" => Algorithm::LevelSet,
        "hybrid" => Algorithm::Hybrid,
        "scheduled" => Algorithm::Scheduled,
        _ => return None,
    })
}

/// Prints every live algorithm's label with its Table 2-style trait row.
fn list_algos() {
    println!(
        "{:<34} {:<13} {:<8} {:<16} granularity",
        "algorithm", "preprocessing", "storage", "inter-level sync"
    );
    for algo in Algorithm::all_live() {
        let row = algo.trait_row();
        println!(
            "{:<34} {:<13} {:<8} {:<16} {}",
            row.algorithm, row.preprocessing, row.storage, row.synchronization, row.granularity
        );
    }
}

fn cmd_solve(args: &[String]) {
    let l = load_matrix(args);
    let n = l.n();
    let b: Vec<f64> = match flag_value(args, "--rhs") {
        Some(path) => {
            let text = fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                exit(1);
            });
            let vals: Result<Vec<f64>, _> =
                text.split_whitespace().map(|t| t.parse::<f64>()).collect();
            let vals = vals.unwrap_or_else(|e| {
                eprintln!("bad rhs value: {e}");
                exit(1);
            });
            if vals.len() != n {
                eprintln!("rhs has {} values, matrix needs {n}", vals.len());
                exit(1);
            }
            vals
        }
        None => {
            eprintln!("note: no --rhs given, using b = L*ones (exact solution = ones)");
            linalg::rhs_for_solution(&l, &vec![1.0; n])
        }
    };

    let rhs_cols: usize = match flag_value(args, "--rhs-cols") {
        None => 1,
        Some(v) => v.parse().ok().filter(|&k| k >= 1).unwrap_or_else(|| {
            eprintln!("--rhs-cols must be a positive integer, got {v}");
            exit(2);
        }),
    };
    let session_reps: Option<usize> = flag_value(args, "--session").map(|v| {
        v.parse().ok().filter(|&r| r >= 1).unwrap_or_else(|| {
            eprintln!("--session must be a positive integer, got {v}");
            exit(2);
        })
    });
    let devices: Option<usize> = flag_value(args, "--devices").map(|v| {
        v.parse()
            .ok()
            .filter(|d| (1..=MAX_DEVICES).contains(d))
            .unwrap_or_else(|| {
                eprintln!(
                    "--devices must be between 1 and {MAX_DEVICES} simulated devices \
                     (the interconnect budget), got {v}"
                );
                exit(2);
            })
    });

    // The row-major `n × K` right-hand-side block for batched solving:
    // column r scales the base rhs by (r + 1), so each column is distinct
    // with a known relationship to the single-rhs solve.
    let bs: Vec<f64> = if rhs_cols == 1 {
        b.clone()
    } else {
        let mut bs = vec![0.0; n * rhs_cols];
        for (j, &bj) in b.iter().enumerate() {
            for r in 0..rhs_cols {
                bs[j * rhs_cols + r] = bj * (r as f64 + 1.0);
            }
        }
        bs
    };

    let solver = Solver::new(l);
    let x = if has_flag(args, "--cpu") {
        if rhs_cols > 1 || session_reps.is_some() {
            eprintln!("--rhs-cols and --session run on the simulated GPU; drop --cpu");
            exit(2);
        }
        if devices.is_some() {
            eprintln!("--devices shards across simulated GPUs; drop --cpu");
            exit(2);
        }
        let threads = flag_value(args, "--cpu")
            .and_then(|v| v.parse().ok())
            .unwrap_or(4);
        let t0 = std::time::Instant::now();
        let x = solver.solve_cpu(&b, threads);
        eprintln!(
            "cpu self-scheduled solve ({threads} threads): {:.2?}",
            t0.elapsed()
        );
        x
    } else {
        let algo = match flag_value(args, "--algo") {
            None | Some("auto") => solver.recommend(),
            Some(name) => parse_algo(name).unwrap_or_else(|| {
                eprintln!("unknown algorithm {name}");
                exit(2);
            }),
        };
        let mut device = match flag_value(args, "--device").unwrap_or("pascal") {
            "pascal" => DeviceConfig::pascal_like(),
            "volta" => DeviceConfig::volta_like(),
            "turing" => DeviceConfig::turing_like(),
            other => {
                eprintln!("unknown device {other}");
                exit(2);
            }
        }
        .scaled_down(4);
        if let Some(v) = flag_value(args, "--engine-threads") {
            let threads = v.parse().ok().filter(|&t| t >= 1).unwrap_or_else(|| {
                eprintln!("--engine-threads must be a positive integer, got {v}");
                exit(2);
            });
            device = device.with_engine_threads(threads);
        }
        let cache_on = has_flag(args, "--cache");
        if cache_on {
            device = device.with_cache(CacheConfig::small());
        }
        // Validated whether or not --profile is present: a bad interval is a
        // usage error, not something to silently default away.
        let profile_interval: u64 = match flag_value(args, "--profile-interval") {
            None => 256,
            Some(v) => v.parse().ok().filter(|&i| i >= 1).unwrap_or_else(|| {
                eprintln!("--profile-interval must be a positive integer, got {v}");
                exit(2);
            }),
        };
        let print_cache = |stats: &capellini_sptrsv::simt::LaunchStats| {
            if cache_on {
                let l1_total = stats.l1_hits + stats.l1_misses;
                let l2_total = stats.l2_hits + stats.l2_misses;
                eprintln!(
                    "cache: L1 {:.1}% hit ({}/{}), L2 {:.1}% hit ({}/{}), {} sector eviction(s)",
                    100.0 * stats.l1_hit_rate(),
                    stats.l1_hits,
                    l1_total,
                    if l2_total > 0 {
                        100.0 * stats.l2_hits as f64 / l2_total as f64
                    } else {
                        0.0
                    },
                    stats.l2_hits,
                    l2_total,
                    stats.sector_evictions
                );
            }
        };
        let trace_path = flag_value(args, "--profile");
        if trace_path.is_some() && (rhs_cols > 1 || session_reps.is_some() || devices.is_some()) {
            eprintln!("--profile is only supported for single cold solves");
            exit(2);
        }
        if let Some(nd) = devices {
            if rhs_cols > 1 {
                eprintln!(
                    "--rhs-cols is not supported with --devices (sharded solves are single-rhs)"
                );
                exit(2);
            }
            let link_name = flag_value(args, "--link").unwrap_or("pcie");
            let shard = match link_name {
                "pcie" => ShardConfig::pcie(nd),
                "nvlink" => ShardConfig::nvlink(nd),
                other => {
                    eprintln!("unknown link {other} (expected pcie or nvlink)");
                    exit(2);
                }
            };
            let report = if let Some(reps) = session_reps {
                let mut session =
                    SolverSession::with_algorithm(&device, solver.matrix().clone(), algo);
                eprintln!(
                    "session: {} analyzed once in {:.3} ms (fingerprint {:016x})",
                    algo.label(),
                    session.analysis_ms(),
                    session.fingerprint()
                );
                let mut last = None;
                for _ in 0..reps {
                    last = Some(session.solve_sharded(&b, &shard).unwrap_or_else(|e| {
                        eprintln!("solve failed: {e}");
                        exit(1);
                    }));
                }
                eprintln!(
                    "{reps} warm sharded solve(s), {} cached partition(s)",
                    session.cached_partitions()
                );
                last.expect("reps >= 1")
            } else {
                solve_sharded(&device, solver.matrix(), &b, algo, &shard).unwrap_or_else(|e| {
                    eprintln!("solve failed: {e}");
                    exit(1);
                })
            };
            for d in 0..nd {
                let (r0, r1) = report.partition.range(d);
                eprintln!(
                    "  device {d}: rows {r0}..{r1} ({} rows, {} nnz), {} cycles",
                    r1 - r0,
                    report.partition.nnz(d),
                    report.per_device[d].cycles
                );
            }
            eprintln!(
                "{} sharded across {nd} simulated {} device(s) over {link_name}: \
                 {:.3} ms makespan, {} boundary message(s), {} link byte(s)",
                algo.label(),
                device.name,
                report.makespan_ms(&device),
                report.link_messages,
                report.link_bytes
            );
            report.x
        } else if let Some(reps) = session_reps {
            // Analyze once, solve many: the amortized workflow.
            let mut session = SolverSession::with_algorithm(&device, solver.matrix().clone(), algo);
            eprintln!(
                "session: {} analyzed once in {:.3} ms (fingerprint {:016x})",
                algo.label(),
                session.analysis_ms(),
                session.fingerprint()
            );
            let mut total_ms = 0.0;
            let mut total_stats = capellini_sptrsv::simt::LaunchStats::default();
            let mut x = Vec::new();
            for _ in 0..reps {
                let rep_result = if rhs_cols == 1 {
                    session.solve(&b).map(|rep| (rep.exec_ms, rep.stats, rep.x))
                } else {
                    session
                        .solve_multi(&bs, rhs_cols)
                        .map(|rep| (rep.exec_ms, rep.stats, rep.x))
                };
                let (exec_ms, stats, xi) = rep_result.unwrap_or_else(|e| {
                    eprintln!("solve failed: {e}");
                    exit(1);
                });
                total_ms += exec_ms;
                total_stats.accumulate(&stats);
                x = xi;
            }
            eprintln!(
                "{reps} warm solve(s) x {rhs_cols} rhs on simulated {}: {:.3} ms exec total, {:.3} ms mean, {} grid-plan reuse(s)",
                device.name,
                total_ms,
                total_ms / reps as f64,
                session.device().grid_reuses()
            );
            print_cache(&total_stats);
            x
        } else if rhs_cols > 1 {
            let rep = solve_multi_simulated(&device, solver.matrix(), &bs, rhs_cols, algo)
                .unwrap_or_else(|e| {
                    eprintln!("solve failed: {e}");
                    exit(1);
                });
            eprintln!(
                "{} on simulated {}: {} rhs in {:.3} ms exec (+{:.3} ms preprocessing), {:.2} GFLOPS, {:.1} GB/s",
                algo.label(),
                device.name,
                rhs_cols,
                rep.exec_ms,
                rep.preprocessing_ms,
                rep.gflops,
                rep.bandwidth_gbs
            );
            print_cache(&rep.stats);
            rep.x
        } else {
            if trace_path.is_some() {
                device.profile = ProfileMode::sampled(profile_interval);
            }
            let rep = solve_simulated(&device, solver.matrix(), &b, algo).unwrap_or_else(|e| {
                eprintln!("solve failed: {e}");
                exit(1);
            });
            if let Some(path) = trace_path {
                let json = capellini_sptrsv::simt::trace::chrome::trace_json(&rep.profiles);
                fs::write(path, json).unwrap_or_else(|e| {
                    eprintln!("cannot write {path}: {e}");
                    exit(1);
                });
                eprintln!(
                    "profile: {} launch(es) traced to {path} (open in chrome://tracing or Perfetto)",
                    rep.profiles.len()
                );
            }
            eprintln!(
                "{} on simulated {}: {:.3} ms exec (+{:.3} ms preprocessing), {:.2} GFLOPS, {:.1} GB/s",
                algo.label(),
                device.name,
                rep.exec_ms,
                rep.preprocessing_ms,
                rep.gflops,
                rep.bandwidth_gbs
            );
            print_cache(&rep.stats);
            rep.x
        }
    };

    if rhs_cols == 1 {
        let res = linalg::residual_inf(solver.matrix(), &x, &b);
        eprintln!("residual |Lx-b|_inf = {res:.3e}");
    } else {
        for r in 0..rhs_cols {
            let xr: Vec<f64> = (0..n).map(|j| x[j * rhs_cols + r]).collect();
            let br: Vec<f64> = (0..n).map(|j| bs[j * rhs_cols + r]).collect();
            let res = linalg::residual_inf(solver.matrix(), &xr, &br);
            eprintln!("residual col {r} |Lx-b|_inf = {res:.3e}");
        }
    }
    match flag_value(args, "--out") {
        Some(path) => {
            // One solution row per line: `rhs_cols` values for each matrix row.
            let text: String = x
                .chunks(rhs_cols)
                .map(|row| {
                    let vals: Vec<String> = row.iter().map(|v| format!("{v:.17e}")).collect();
                    format!("{}\n", vals.join(" "))
                })
                .collect();
            fs::write(path, text).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                exit(1);
            });
            eprintln!("solution written to {path}");
        }
        None => {
            let preview: Vec<String> = x.iter().take(8).map(|v| format!("{v:.6}")).collect();
            println!("x[0..8] = [{}]", preview.join(", "));
        }
    }
}

fn cmd_serve(args: &[String]) {
    let parse_count = |name: &str, default: usize| -> usize {
        match flag_value(args, name) {
            None => default,
            Some(v) => v.parse().ok().filter(|&k| k >= 1).unwrap_or_else(|| {
                eprintln!("{name} must be a positive integer, got {v}");
                exit(2);
            }),
        }
    };
    let clients = parse_count("--clients", 4);
    let requests = parse_count("--requests", 8);
    let max_batch = parse_count("--max-batch", 8);
    let window_ms: u64 = match flag_value(args, "--window") {
        None => 3,
        Some(v) => v.parse().ok().unwrap_or_else(|| {
            eprintln!("--window must be a whole number of milliseconds, got {v}");
            exit(2);
        }),
    };
    let device = match flag_value(args, "--device").unwrap_or("pascal") {
        "pascal" => DeviceConfig::pascal_like(),
        "volta" => DeviceConfig::volta_like(),
        "turing" => DeviceConfig::turing_like(),
        other => {
            eprintln!("unknown device {other}");
            exit(2);
        }
    }
    .scaled_down(4);

    let l = load_matrix(args);
    let n = l.n();
    let handle = MatrixHandle::new(l);
    let service = SolverService::new(
        ServiceConfig::new(device)
            .with_coalesce_window(std::time::Duration::from_millis(window_ms))
            .with_max_batch(max_batch),
    );
    eprintln!(
        "serving fingerprint {:016x} to {clients} client(s) x {requests} request(s) \
         (window {window_ms} ms, max batch {max_batch})",
        handle.fingerprint()
    );

    let failures = std::sync::Mutex::new(Vec::<String>::new());
    let t0 = std::time::Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let service = &service;
            let handle = &handle;
            let failures = &failures;
            scope.spawn(move || {
                let tenant = format!("client-{c}");
                for r in 0..requests {
                    let b: Vec<f64> = (0..n)
                        .map(|i| ((i * (2 * c + 3) + 7 * r + 1) % 29) as f64 - 14.0)
                        .collect();
                    match service.solve(&tenant, handle, &b) {
                        Ok(resp) => {
                            let res = linalg::residual_inf(handle.matrix(), &resp.x, &b);
                            if !res.is_finite() || res > 1e-8 {
                                failures
                                    .lock()
                                    .unwrap()
                                    .push(format!("{tenant} request {r}: residual {res:.3e}"));
                            }
                        }
                        Err(e) => failures
                            .lock()
                            .unwrap()
                            .push(format!("{tenant} request {r}: {e}")),
                    }
                }
            });
        }
    });
    let wall = t0.elapsed();

    for f in failures.lock().unwrap().iter() {
        eprintln!("FAILED: {f}");
    }
    let m = service.metrics();
    eprintln!(
        "served {} solve(s) in {wall:.2?}: {} launch(es), mean batch {:.2}, largest {}, \
         {} reject(s), analysis {:.3} ms",
        m.solves,
        m.launches,
        m.mean_batch(),
        m.largest_batch,
        m.rejects,
        m.analysis_ms_total
    );
    let mut tenants = service.all_tenant_metrics();
    tenants.sort_by(|a, b| a.0.cmp(&b.0));
    for (tenant, tm) in tenants {
        println!(
            "{tenant}: {} solve(s), mean batch {:.2}, mean queue wait {:.3} ms, {} reject(s)",
            tm.solves,
            tm.mean_batch(),
            tm.mean_queue_ms(),
            tm.rejects
        );
    }
    if !failures.lock().unwrap().is_empty() {
        exit(1);
    }
}

fn cmd_gen(args: &[String]) {
    let n: usize = flag_value(args, "--n")
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);
    let seed: u64 = flag_value(args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);
    let kind = flag_value(args, "--kind").unwrap_or("powerlaw");
    let l = match kind {
        "powerlaw" => gen::powerlaw(n, 3.0, seed),
        "circuit" => gen::circuit_like(n, 4, 800, seed),
        "stencil" => {
            let side = (n as f64).cbrt().ceil() as usize;
            gen::stencil3d(side, side, side, seed)
        }
        "lp" => gen::ultra_sparse_wide(n, 16, 1, seed),
        "band" => gen::dense_band(n, 32, seed),
        other => {
            eprintln!("unknown kind {other}");
            exit(2);
        }
    };
    let Some(path) = flag_value(args, "--out") else {
        eprintln!("--out is required");
        exit(2);
    };
    let mut file = fs::File::create(path).unwrap_or_else(|e| {
        eprintln!("cannot create {path}: {e}");
        exit(1);
    });
    mmio::write_matrix_market(&mut file, l.csr()).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        exit(1);
    });
    let s = MatrixStats::compute(&l);
    eprintln!(
        "wrote {kind} matrix to {path}: n = {}, nnz = {}, granularity = {:.3}",
        s.n, s.nnz, s.granularity
    );
}
