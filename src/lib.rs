//! # capellini-sptrsv
//!
//! Facade crate for the CapelliniSpTRSV reproduction (ICPP 2020): re-exports
//! the sparse-matrix substrate, the SIMT GPU simulator, and the SpTRSV
//! algorithm library under one roof so examples and downstream users need a
//! single dependency.
//!
//! See the README for a tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for the paper-vs-measured record.

#![warn(missing_docs)]

pub use capellini_core as core;
pub use capellini_simt as simt;
pub use capellini_sparse as sparse;

/// One-stop prelude: matrix types, generators, devices, and solvers.
pub mod prelude {
    pub use capellini_core::prelude::*;
    pub use capellini_simt::prelude::*;
    pub use capellini_sparse::prelude::*;
}
