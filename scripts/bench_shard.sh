#!/usr/bin/env bash
# Measures sharded multi-device scaling (capellini_core::solve_sharded,
# DESIGN.md §15) and records it as BENCH_<N>.json at the repo root so
# future PRs can track the perf trajectory. N is the first unused number,
# so successive runs append to the series instead of clobbering earlier
# records.
#
# Runs `repro shard-scaling`, which reruns each suite matrix at 1, 2, 4 and
# 8 simulated devices over both interconnect classes (verifying every
# sharded solution is bit-identical to the single-device oracle before
# reading any makespan) plus a weak-scaling series, and copies
# results/shard_scaling.json into BENCH_<N>.json.
#
# Usage: scripts/bench_shard.sh [scale] [limit]
#   scale    small|medium|full (default: small)
#   limit    cap on suite matrices, 0 = no cap (default: 6)

set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${1:-small}"
LIMIT="${2:-6}"

# shard-scaling writes its JSON under the results dir; point it at a
# scratch location so the repo's results/ cache is untouched.
TMPDIR="$(mktemp -d)"
trap 'rm -rf "$TMPDIR"' EXIT

cargo build --release -q -p capellini-bench

CAPELLINI_RESULTS_DIR="$TMPDIR" \
    ./target/release/repro shard-scaling --scale "$SCALE" --limit "$LIMIT"

N=1
while [ -e "BENCH_${N}.json" ]; do N=$((N + 1)); done
OUT="BENCH_${N}.json"
cp "$TMPDIR/shard_scaling.json" "$OUT"
echo "wrote $OUT:"
cat "$OUT"
