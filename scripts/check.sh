#!/usr/bin/env bash
# Repo-wide gate: formatting, lints, and the tier-1 build/test cycle.
# Run before every push; CI runs exactly this.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo clippy benches + examples (deny warnings)"
cargo clippy --workspace --benches --examples -- -D warnings

echo "==> tier-1: cargo build --release && cargo test"
cargo build --release
cargo test -q

echo "==> spin fast-forward differential suite (Replay vs FastForward bit-exactness)"
cargo test --release -q -p capellini-sptrsv --test spin_fastforward

echo "==> engine_spin smoke (calibration asserts Replay/FastForward stats equality)"
cargo bench -q -p capellini-bench --bench engine_spin -- --quick

echo "==> engine_batch smoke (calibration asserts batched == looped bit-exactness)"
cargo bench -q -p capellini-bench --bench engine_batch -- --quick

echo "==> all checks passed"
