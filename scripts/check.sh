#!/usr/bin/env bash
# Repo-wide gate: formatting, lints, and the tier-1 build/test cycle.
# Run before every push; CI runs exactly this.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo clippy benches + examples (deny warnings)"
cargo clippy --workspace --benches --examples -- -D warnings

echo "==> tier-1: cargo build --release && cargo test"
cargo build --release
cargo test -q

echo "==> spin fast-forward differential suite (Replay vs FastForward bit-exactness)"
cargo test --release -q -p capellini-sptrsv --test spin_fastforward

echo "==> engine_spin smoke (calibration asserts Replay/FastForward stats equality)"
cargo bench -q -p capellini-bench --bench engine_spin -- --quick

echo "==> engine_batch smoke (calibration asserts batched == looped bit-exactness)"
cargo bench -q -p capellini-bench --bench engine_batch -- --quick

echo "==> clustered-engine differential suite (serial vs 2/4/8 clusters bit-exactness)"
cargo test --release -q -p capellini-sptrsv --test engine_cluster

echo "==> engine_cluster smoke (calibration asserts serial == clustered bit-exactness)"
cargo bench -q -p capellini-bench --bench engine_cluster -- --quick

echo "==> cache-model differential suite (off invisible, on deterministic across clusters)"
cargo test --release -q -p capellini-sptrsv --test cache_model

echo "==> engine_cache smoke (calibration asserts cache-off zero counters + bit-stable solutions)"
cargo bench -q -p capellini-bench --bench engine_cache -- --quick

echo "==> scheduled-kernel suite (coarsened units bitwise vs reference across spin modes)"
cargo test --release -q -p capellini-core scheduled

echo "==> engine_schedule smoke (calibration asserts bitwise vs reference + chain cycle win)"
cargo bench -q -p capellini-bench --bench engine_schedule -- --quick

echo "==> multi-device differential suite (sharded vs single-device bit-exactness)"
cargo test --release -q -p capellini-sptrsv --test multi_device

echo "==> engine_shard smoke (calibration asserts sharded == single-device bit-exactness)"
cargo bench -q -p capellini-bench --bench engine_shard -- --quick

echo "==> service differential suite (concurrent tenants vs serial sessions bit-exactness)"
cargo test --release -q -p capellini-sptrsv --test service

echo "==> serve_load smoke (calibration asserts bit-exactness + nonzero coalescing)"
cargo bench -q -p capellini-bench --bench serve_load -- --quick

# Calibration panics must fail the gate under a non-default thread count
# too: the benches run their equality asserts before Criterion forks any
# timing work, and `set -e` above propagates their exit codes verbatim.
echo "==> 2-thread smoke (bench calibrations under CAPELLINI_THREADS=2)"
CAPELLINI_THREADS=2 cargo bench -q -p capellini-bench --bench engine_cluster -- --quick
CAPELLINI_THREADS=2 cargo bench -q -p capellini-bench --bench engine_batch -- --quick

echo "==> all checks passed"
