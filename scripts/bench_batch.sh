#!/usr/bin/env bash
# Records the amortized-batched-solving result (cached SolverSession +
# multi-RHS kernels) as BENCH_<N>.json at the repo root so future PRs can
# track the perf trajectory. N is the first unused number, so successive
# runs append to the series instead of clobbering earlier records.
#
# Runs `repro batch`, which times k cold single-RHS solves against k warm
# session solves and one warm batched solve of the same right-hand-side
# block (verifying the batched block is bit-identical to the cold solves),
# and copies the resulting results/batch.json into BENCH_<N>.json.
#
# Usage: scripts/bench_batch.sh [scale]
#   scale    small|medium|full (default: small)

set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${1:-small}"

# `batch` times live solves, never the CSV cache, but point the results dir
# at a scratch location anyway so the json lands somewhere disposable.
TMPDIR="$(mktemp -d)"
trap 'rm -rf "$TMPDIR"' EXIT

cargo build --release -q -p capellini-bench

CAPELLINI_RESULTS_DIR="$TMPDIR" ./target/release/repro batch --scale "$SCALE"

N=1
while [ -e "BENCH_${N}.json" ]; do N=$((N + 1)); done
OUT="BENCH_${N}.json"
cp "$TMPDIR/batch.json" "$OUT"
echo "wrote $OUT:"
cat "$OUT"
