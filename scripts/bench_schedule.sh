#!/usr/bin/env bash
# Measures the scheduled-kernel study (Algorithm::Scheduled, level-coarsened
# work units) and records it as BENCH_<N>.json at the repo root so future
# PRs can track the perf trajectory. N is the first unused number, so
# successive runs append to the series instead of clobbering earlier
# records.
#
# Runs `repro schedule`, which builds the coarsened schedule for the deep
# and unbalanced dataset entries (chain-like, nlpkkt160-like, cant-like,
# wiki-Talk-like), races the scheduled kernel against every previously live
# algorithm (verifying each scheduled solve bitwise against the serial
# reference), tabulates the analysis-cost vs execution-win crossover per
# matrix, asserts the >= 20% cycle win on the deep pair, and copies
# results/schedule.json into BENCH_<N>.json.
#
# Usage: scripts/bench_schedule.sh [scale]
#   scale    small|medium|full (default: small)

set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${1:-small}"

# schedule writes its JSON under the results dir; point it at a scratch
# location so the repo's results/ cache is untouched.
TMPDIR="$(mktemp -d)"
trap 'rm -rf "$TMPDIR"' EXIT

cargo build --release -q -p capellini-bench

CAPELLINI_RESULTS_DIR="$TMPDIR" \
    ./target/release/repro schedule --scale "$SCALE"

N=1
while [ -e "BENCH_${N}.json" ]; do N=$((N + 1)); done
OUT="BENCH_${N}.json"
cp "$TMPDIR/schedule.json" "$OUT"
echo "wrote $OUT:"
cat "$OUT"
