#!/usr/bin/env bash
# Records the multi-tenant serving result (sharded session registry +
# continuous batching) as BENCH_<N>.json at the repo root so future PRs can
# track the perf trajectory. N is the first unused number, so successive
# runs append to the series instead of clobbering earlier records.
#
# Runs `repro serve-load`, which drives the SolverService with a seeded
# open-loop load generator (a saturating burst and paced exponential
# arrivals, each under a coalescing config and the window-0 uncoalesced
# baseline), verifies every response bit-identical to fresh serial
# SolverSession solves, and copies the resulting results/serve_load.json
# into BENCH_<N>.json.
#
# Usage: scripts/bench_serve.sh [scale]
#   scale    small|medium|full (default: small)

set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${1:-small}"

# `serve-load` times live solves, never the CSV cache, but point the results
# dir at a scratch location anyway so the json lands somewhere disposable.
TMPDIR="$(mktemp -d)"
trap 'rm -rf "$TMPDIR"' EXIT

cargo build --release -q -p capellini-bench

CAPELLINI_RESULTS_DIR="$TMPDIR" ./target/release/repro serve-load --scale "$SCALE"

N=1
while [ -e "BENCH_${N}.json" ]; do N=$((N + 1)); done
OUT="BENCH_${N}.json"
cp "$TMPDIR/serve_load.json" "$OUT"
echo "wrote $OUT:"
cat "$OUT"
