#!/usr/bin/env bash
# Measures the parallel-sweep speedup and records it as BENCH_<N>.json at
# the repo root so future PRs can track the perf trajectory. N is the first
# unused number, so successive runs append to the series instead of
# clobbering earlier records.
#
# Runs `repro sweep-timing`, which times one serial pass and one N-thread
# pass over the same sweep (verifying the cell results are identical), and
# copies the resulting results/sweep_timing.json into BENCH_<N>.json.
#
# Usage: scripts/bench_sweep.sh [threads] [scale] [limit]
#   threads  worker threads for the parallel pass (default: nproc, min 2)
#   scale    small|medium|full (default: small)
#   limit    cap on suite matrices, 0 = no cap (default: 24)
#
# Note: the measured speedup is only meaningful on a machine with >= threads
# physical cores; on a single-core container the parallel pass cannot win.

set -euo pipefail
cd "$(dirname "$0")/.."

THREADS="${1:-$(nproc 2>/dev/null || echo 4)}"
if [ "$THREADS" -lt 2 ]; then THREADS=2; fi
SCALE="${2:-small}"
LIMIT="${3:-24}"

# sweep-timing must actually sweep, not read the CSV cache: point the
# results dir at a scratch location so cached cells never short-circuit
# the timing runs.
TMPDIR="$(mktemp -d)"
trap 'rm -rf "$TMPDIR"' EXIT

cargo build --release -q -p capellini-bench

CAPELLINI_RESULTS_DIR="$TMPDIR" CAPELLINI_THREADS="$THREADS" \
    ./target/release/repro sweep-timing --scale "$SCALE" --limit "$LIMIT"

N=1
while [ -e "BENCH_${N}.json" ]; do N=$((N + 1)); done
OUT="BENCH_${N}.json"
cp "$TMPDIR/sweep_timing.json" "$OUT"
echo "wrote $OUT:"
cat "$OUT"
