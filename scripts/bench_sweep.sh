#!/usr/bin/env bash
# Measures the parallel-sweep speedup and records it as BENCH_1.json at the
# repo root so future PRs can track the perf trajectory.
#
# Runs `repro sweep-timing`, which times one serial pass and one N-thread
# pass over the same sweep (verifying the cell results are identical), and
# copies the resulting results/sweep_timing.json into BENCH_1.json.
#
# Usage: scripts/bench_sweep.sh [threads] [scale] [limit]
#   threads  worker threads for the parallel pass (default: nproc, min 2)
#   scale    small|medium|full (default: small)
#   limit    cap on suite matrices, 0 = no cap (default: 24)
#
# Note: the measured speedup is only meaningful on a machine with >= threads
# physical cores; on a single-core container the parallel pass cannot win.

set -euo pipefail
cd "$(dirname "$0")/.."

THREADS="${1:-$(nproc 2>/dev/null || echo 4)}"
if [ "$THREADS" -lt 2 ]; then THREADS=2; fi
SCALE="${2:-small}"
LIMIT="${3:-24}"

# sweep-timing must actually sweep, not read the CSV cache: point the
# results dir at a scratch location so cached cells never short-circuit
# the timing runs.
TMPDIR="$(mktemp -d)"
trap 'rm -rf "$TMPDIR"' EXIT

cargo build --release -q -p capellini-bench

CAPELLINI_RESULTS_DIR="$TMPDIR" CAPELLINI_THREADS="$THREADS" \
    ./target/release/repro sweep-timing --scale "$SCALE" --limit "$LIMIT"

cp "$TMPDIR/sweep_timing.json" BENCH_1.json
echo "wrote BENCH_1.json:"
cat BENCH_1.json
