#!/usr/bin/env bash
# Measures the cache-locality study (DeviceConfig::with_cache) and records
# it as BENCH_<N>.json at the repo root so future PRs can track the perf
# trajectory. N is the first unused number, so successive runs append to
# the series instead of clobbering earlier records.
#
# Runs `repro locality`, which arms the finite L1/L2 sector cache and
# trades the dataset's shuffled row ordering against the RCM-like and
# level-coalesced relabelings, plus row-major vs column-major multi-RHS
# tiling (verifying every permuted solve against the reference solution
# and the two tilings bitwise against each other), and copies
# results/locality.json into BENCH_<N>.json.
#
# Usage: scripts/bench_cache.sh [scale]
#   scale    small|medium|full (default: small)

set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${1:-small}"

# locality writes its JSON under the results dir; point it at a scratch
# location so the repo's results/ cache is untouched.
TMPDIR="$(mktemp -d)"
trap 'rm -rf "$TMPDIR"' EXIT

cargo build --release -q -p capellini-bench

CAPELLINI_RESULTS_DIR="$TMPDIR" \
    ./target/release/repro locality --scale "$SCALE"

N=1
while [ -e "BENCH_${N}.json" ]; do N=$((N + 1)); done
OUT="BENCH_${N}.json"
cp "$TMPDIR/locality.json" "$OUT"
echo "wrote $OUT:"
cat "$OUT"
