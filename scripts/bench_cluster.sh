#!/usr/bin/env bash
# Measures the clustered-engine speedup (DeviceConfig::with_engine_threads)
# and records it as BENCH_<N>.json at the repo root so future PRs can track
# the perf trajectory. N is the first unused number, so successive runs
# append to the series instead of clobbering earlier records.
#
# Runs `repro cluster-timing`, which times each solve on the serial engine
# and on a 4-cluster engine (verifying stats and solutions are bit-identical
# before timing anything), and copies results/cluster_timing.json into
# BENCH_<N>.json.
#
# Usage: scripts/bench_cluster.sh [scale] [limit]
#   scale    small|medium|full (default: small)
#   limit    cap on suite matrices, 0 = no cap (default: 12)
#
# Note: the measured speedup is only meaningful on a machine with >= 4
# physical cores; on a single-core container the clustered pass can at best
# reach parity, and the record documents that ceiling (host_cpus is in the
# JSON).

set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${1:-small}"
LIMIT="${2:-12}"

# cluster-timing writes its JSON under the results dir; point it at a
# scratch location so the repo's results/ cache is untouched.
TMPDIR="$(mktemp -d)"
trap 'rm -rf "$TMPDIR"' EXIT

cargo build --release -q -p capellini-bench

CAPELLINI_RESULTS_DIR="$TMPDIR" \
    ./target/release/repro cluster-timing --scale "$SCALE" --limit "$LIMIT"

N=1
while [ -e "BENCH_${N}.json" ]; do N=$((N + 1)); done
OUT="BENCH_${N}.json"
cp "$TMPDIR/cluster_timing.json" "$OUT"
echo "wrote $OUT:"
cat "$OUT"
