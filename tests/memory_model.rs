//! Relaxed-visibility audit: under the opt-in store-buffer memory model
//! (`MemoryModel::Relaxed`), a global store is invisible to other warps until
//! the owning warp executes `__threadfence()` or the buffered store drains on
//! its own. Every shipped kernel must still solve correctly under that model
//! *and* pass racecheck — their fences are load-bearing. Deliberately broken
//! publish sequences (fence stripped, flag stored before the value) must be
//! rejected: racecheck reports a structured `RaceDetected`, and plain relaxed
//! mode lets the stale read through so the solve is *numerically wrong*.
//!
//! The default `SequentiallyConsistent` model is pinned bit-exact by
//! `golden_traces.rs`; this file is the teeth on the relaxed side.

use capellini_sptrsv::core::kernels::writing_first::{self, FenceMode};
use capellini_sptrsv::core::kernels::{naive, writing_first_multi};
use capellini_sptrsv::core::Algorithm;
use capellini_sptrsv::prelude::*;
use capellini_sptrsv::simt::GpuDevice;
use capellini_sptrsv::sparse::{paper_example, CooMatrix, CsrMatrix};

/// Drain delay in scheduler ticks: long enough that an unfenced store stays
/// buffered across the consumer's poll-load window, short enough that
/// auto-drain keeps launch-spanning protocols (level-set) fast.
const DRAIN_TICKS: u64 = 2_000;

fn relaxed_cfg() -> DeviceConfig {
    DeviceConfig::pascal_like()
        .scaled_down(4)
        .with_memory_model(MemoryModel::relaxed(DRAIN_TICKS))
}

fn racecheck_cfg() -> DeviceConfig {
    DeviceConfig::pascal_like()
        .scaled_down(4)
        .with_memory_model(MemoryModel::racecheck(DRAIN_TICKS))
}

fn matrices() -> Vec<(&'static str, LowerTriangularCsr)> {
    vec![
        ("paper", paper_example()),
        ("graph", gen::powerlaw(1_200, 3.0, 21)),
        ("chain", gen::chain(300, 1, 26)),
        ("stencil", gen::stencil3d(7, 7, 7, 24)),
        ("band", gen::dense_band(256, 16, 25)),
    ]
}

fn problem(l: &LowerTriangularCsr) -> (Vec<f64>, Vec<f64>) {
    let x_true: Vec<f64> = (0..l.n())
        .map(|i| ((i * 7 + 3) % 17) as f64 - 8.0)
        .collect();
    let b = linalg::rhs_for_solution(l, &x_true);
    (b, x_true)
}

/// Rows depend only on rows a full warp (or more) earlier, so every data
/// hand-off crosses a warp boundary and must go through DRAM — the structure
/// that exposes unpublished stores.
fn cross_warp_matrix() -> LowerTriangularCsr {
    let n = 128;
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        if i >= 64 {
            coo.push(i as u32, (i - 64) as u32, 0.5);
        }
        coo.push(i as u32, i as u32, 1.0);
    }
    LowerTriangularCsr::try_new(CsrMatrix::from_coo(&coo)).unwrap()
}

// ---------------------------------------------------------------------------
// The shipped kernels: fences publish everything they must.
// ---------------------------------------------------------------------------

#[test]
fn all_live_algorithms_solve_correctly_under_relaxed_visibility() {
    let cfg = relaxed_cfg();
    for (name, l) in matrices() {
        let (b, _) = problem(&l);
        let x_ref = solve_serial_csr(&l, &b);
        for algo in Algorithm::all_live() {
            let rep = solve_simulated(&cfg, &l, &b, algo)
                .unwrap_or_else(|e| panic!("{name}/{} under relaxed: {e}", algo.label()));
            linalg::assert_solutions_close(&rep.x, &x_ref, 1e-10);
        }
    }
}

#[test]
fn all_live_algorithms_pass_racecheck() {
    let cfg = racecheck_cfg();
    for (name, l) in matrices() {
        let (b, _) = problem(&l);
        let x_ref = solve_serial_csr(&l, &b);
        for algo in Algorithm::all_live() {
            let rep = solve_simulated(&cfg, &l, &b, algo)
                .unwrap_or_else(|e| panic!("{name}/{} under racecheck: {e}", algo.label()));
            linalg::assert_solutions_close(&rep.x, &x_ref, 1e-10);
        }
    }
}

#[test]
fn multi_rhs_kernel_passes_racecheck() {
    // One fence publishes all nrhs x-stores of a row; racecheck confirms.
    let l = gen::powerlaw(600, 3.0, 33);
    let nrhs = 3;
    let x_true: Vec<f64> = (0..l.n() * nrhs)
        .map(|i| ((i * 5 + 1) % 13) as f64 - 6.0)
        .collect();
    let mut bs = vec![0.0; l.n() * nrhs];
    for r in 0..nrhs {
        let xr: Vec<f64> = (0..l.n()).map(|i| x_true[i * nrhs + r]).collect();
        let br = linalg::rhs_for_solution(&l, &xr);
        for i in 0..l.n() {
            bs[i * nrhs + r] = br[i];
        }
    }
    let mut dev = GpuDevice::new(racecheck_cfg());
    let out = writing_first_multi::solve_multi(&mut dev, &l, &bs, nrhs).unwrap();
    for (got, want) in out.x.iter().zip(&x_true) {
        assert!(
            (got - want).abs() < 1e-9,
            "multi-rhs drifted under racecheck"
        );
    }
}

#[test]
fn naive_kernel_passes_racecheck_on_cross_warp_dependencies() {
    // The straw-man kernel deadlocks on intra-warp chains regardless of the
    // memory model; on a strictly cross-warp matrix it completes, and its
    // fence-then-flag publish sequence is race-free.
    let l = cross_warp_matrix();
    let (b, x_true) = problem(&l);
    let mut dev = GpuDevice::new(racecheck_cfg());
    let out = naive::solve(&mut dev, &l, &b).unwrap();
    linalg::assert_solutions_close(&out.x, &x_true, 1e-10);
}

#[test]
fn relaxed_runs_report_drained_stores_in_metrics() {
    let l = cross_warp_matrix();
    let (b, _) = problem(&l);
    let rep = solve_simulated(&relaxed_cfg(), &l, &b, Algorithm::CapelliniWritingFirst).unwrap();
    // Every row's flag store (post-fence) drains on its own; fenced x-stores
    // drain at the fence. Either way the counter must be live.
    assert!(
        rep.stats.drained_stores > 0,
        "drained_stores counter never moved"
    );
    assert_eq!(
        rep.stats.stale_reads, 0,
        "a fenced kernel must never read stale data"
    );
}

// ---------------------------------------------------------------------------
// The broken variants: SC silently certifies them, relaxed mode rejects them.
// ---------------------------------------------------------------------------

#[test]
fn fence_stripped_kernel_passes_under_sc_but_is_a_detected_race() {
    let l = cross_warp_matrix();
    let (b, x_true) = problem(&l);

    // Under sequential consistency the stripped kernel "works": stores land
    // in program order, so the flag can never outrun the value. This is the
    // trap — a test suite on the default model certifies a broken kernel.
    let mut dev = GpuDevice::new(DeviceConfig::pascal_like().scaled_down(4));
    let out = writing_first::solve_with_fence_mode(&mut dev, &l, &b, FenceMode::NoFence).unwrap();
    linalg::assert_solutions_close(&out.x, &x_true, 1e-10);

    // Racecheck sees the consumer load a word whose store was never
    // published by a fence and reports the pair.
    let mut dev = GpuDevice::new(racecheck_cfg());
    let err = writing_first::solve_with_fence_mode(&mut dev, &l, &b, FenceMode::NoFence)
        .expect_err("racecheck must reject the fence-stripped kernel");
    match err {
        SimtError::RaceDetected {
            kernel,
            producer_warp,
            consumer_warp,
            ..
        } => {
            assert_eq!(kernel, "capellini-writing-first");
            assert_ne!(producer_warp, consumer_warp, "race must cross warps");
            let msg = err.to_string();
            assert!(
                msg.contains("race in"),
                "Display should describe the race: {msg}"
            );
        }
        other => panic!("expected RaceDetected, got {other}"),
    }
}

#[test]
fn flag_before_store_reads_stale_data_under_relaxed() {
    let l = cross_warp_matrix();
    let (b, x_true) = problem(&l);

    // Flag-first with the fence between flag and value publishes the *flag*
    // and leaves the value buffered: consumers poll successfully, then read
    // a stale x. Plain relaxed mode lets that through — the solve completes
    // with wrong numbers, and the stale-read counter records why.
    let mut dev = GpuDevice::new(relaxed_cfg());
    let out = writing_first::solve_with_fence_mode(&mut dev, &l, &b, FenceMode::FlagFirst).unwrap();
    let max_err = out
        .x
        .iter()
        .zip(&x_true)
        .map(|(got, want)| (got - want).abs())
        .fold(0.0f64, f64::max);
    assert!(
        max_err > 1e-3,
        "flag-first should have read stale x and produced a wrong solution"
    );
    assert!(
        out.stats.stale_reads > 0,
        "the wrong answer must be attributed to stale reads"
    );

    // Racecheck turns the silent wrong answer into a structured error.
    let mut dev = GpuDevice::new(racecheck_cfg());
    let err = writing_first::solve_with_fence_mode(&mut dev, &l, &b, FenceMode::FlagFirst)
        .expect_err("racecheck must reject flag-before-store");
    assert!(
        matches!(err, SimtError::RaceDetected { .. }),
        "expected RaceDetected, got {err}"
    );
}
