//! Differential suite for the clustered parallel engine
//! (`DeviceConfig::with_engine_threads`, DESIGN.md §11): partitioning the
//! simulated SMs across host threads must be *observationally invisible* —
//! identical `LaunchStats`, solutions, traces, profiles, and error
//! diagnostics at every cluster count, under every memory model × spin
//! model combination. The serial engine (1 thread) is the oracle; 2, 4 and
//! 8 clusters must reproduce it bit-for-bit.

use capellini_sptrsv::core::kernels::{
    cusparse_like, hybrid, levelset, scheduled, syncfree, syncfree_csc, two_phase, writing_first,
};
use capellini_sptrsv::prelude::*;
use capellini_sptrsv::simt::config::StoreScope;
use capellini_sptrsv::simt::{GpuDevice, ProfileMode, Trace};
use capellini_sptrsv::sparse::{gen, paper_example};

type Solve =
    fn(
        &mut GpuDevice,
        &LowerTriangularCsr,
        &[f64],
    ) -> Result<capellini_sptrsv::core::kernels::SimSolve, capellini_sptrsv::simt::SimtError>;

const CLUSTER_COUNTS: [usize; 3] = [2, 4, 8];

fn kernels() -> Vec<(&'static str, Solve)> {
    vec![
        ("writing_first", writing_first::solve as Solve),
        ("syncfree", syncfree::solve as Solve),
        ("syncfree_csc", syncfree_csc::solve as Solve),
        ("two_phase", two_phase::solve as Solve),
        ("levelset", levelset::solve as Solve),
        ("cusparse_like", cusparse_like::solve as Solve),
        ("hybrid", hybrid::solve as Solve),
        ("scheduled", scheduled::solve as Solve),
    ]
}

/// The same dataset miniature as `spin_fastforward.rs`: the paper's 8×8
/// example, a serial chain (worst-case spin depth, maximal parking), a
/// random DAG, and a banded matrix (mixed level widths).
fn matrices() -> Vec<(&'static str, LowerTriangularCsr)> {
    vec![
        ("paper8", paper_example()),
        ("chain256", gen::chain(256, 1, 7)),
        ("randomk", gen::random_k(600, 3, 600, 42)),
        ("banded", gen::banded(400, 5, 0.6, 7)),
    ]
}

fn base_cfg() -> DeviceConfig {
    DeviceConfig::pascal_like().scaled_down(4)
}

fn rhs(l: &LowerTriangularCsr) -> Vec<f64> {
    let x_true: Vec<f64> = (0..l.n()).map(|i| (i % 13) as f64 - 6.0).collect();
    linalg::rhs_for_solution(l, &x_true)
}

/// Runs one (kernel, matrix, config) cell at a given engine-thread count
/// and renders *everything observable* into one comparable string: the full
/// stats debug form, the solution bit patterns, the heap-event count, and —
/// on failure — the complete error display.
fn observe(
    solve: Solve,
    l: &LowerTriangularCsr,
    b: &[f64],
    cfg: &DeviceConfig,
    threads: usize,
) -> String {
    let mut dev = GpuDevice::new(cfg.clone().with_engine_threads(threads));
    let body = match solve(&mut dev, l, b) {
        Ok(o) => {
            let bits: Vec<u64> = o.x.iter().map(|v| v.to_bits()).collect();
            format!("ok stats={:?} xbits={bits:?}", o.stats)
        }
        Err(e) => format!("err={e}"),
    };
    format!("{body} heap_events={}", dev.last_launch_heap_events())
}

fn diff_one(name: &str, mname: &str, solve: Solve, l: &LowerTriangularCsr, cfg: &DeviceConfig) {
    let b = rhs(l);
    let serial = observe(solve, l, &b, cfg, 1);
    for threads in CLUSTER_COUNTS {
        let clustered = observe(solve, l, &b, cfg, threads);
        assert_eq!(
            clustered, serial,
            "{name} on {mname}: diverged at {threads} engine threads"
        );
    }
}

fn diff_all(cfg: &DeviceConfig) {
    for (mname, l) in &matrices() {
        for (name, solve) in &kernels() {
            diff_one(name, mname, *solve, l, cfg);
        }
    }
}

#[test]
fn clusters_bit_exact_sc_replay() {
    diff_all(&base_cfg().with_spin_model(SpinModel::Replay));
}

#[test]
fn clusters_bit_exact_sc_fastforward() {
    diff_all(&base_cfg().with_spin_model(SpinModel::FastForward));
}

#[test]
fn clusters_bit_exact_relaxed_replay() {
    diff_all(
        &base_cfg()
            .with_memory_model(MemoryModel::relaxed(2_000))
            .with_spin_model(SpinModel::Replay),
    );
}

#[test]
fn clusters_bit_exact_relaxed_fastforward() {
    diff_all(
        &base_cfg()
            .with_memory_model(MemoryModel::relaxed(2_000))
            .with_spin_model(SpinModel::FastForward),
    );
}

#[test]
fn clusters_bit_exact_relaxed_sm_scope() {
    diff_all(
        &base_cfg()
            .with_memory_model(MemoryModel::Relaxed {
                drain_ticks: 2_000,
                scope: StoreScope::Sm,
                racecheck: false,
            })
            .with_spin_model(SpinModel::FastForward),
    );
}

#[test]
fn clusters_bit_exact_racecheck() {
    diff_all(
        &base_cfg()
            .with_memory_model(MemoryModel::racecheck(2_000))
            .with_spin_model(SpinModel::FastForward),
    );
}

/// The fixture that caught the lazy-SM wake-projection bug, at parallel
/// scale: enough warps per SM that every cluster has real parked work.
#[test]
fn clusters_bit_exact_on_golden_fixture() {
    let l = gen::random_k(3000, 3, 3000, 42);
    let cfg = base_cfg().with_spin_model(SpinModel::FastForward);
    diff_one(
        "syncfree",
        "randomk3000",
        syncfree::solve as Solve,
        &l,
        &cfg,
    );
    diff_one(
        "writing_first",
        "randomk3000",
        writing_first::solve as Solve,
        &l,
        &cfg,
    );
}

/// Golden traces: the rendered event stream — every issue, retire, poll and
/// wake with its tick — must be byte-identical across cluster counts.
#[test]
fn clustered_traces_bit_exact() {
    let l = gen::random_k(600, 3, 600, 42);
    let b = rhs(&l);
    let run_sf = |threads: usize| {
        let mut dev = GpuDevice::new(base_cfg().with_engine_threads(threads));
        let mut tr = Trace::new();
        syncfree::solve_traced(&mut dev, &l, &b, &mut tr).unwrap();
        tr.render()
    };
    let run_wf = |threads: usize| {
        let mut dev = GpuDevice::new(base_cfg().with_engine_threads(threads));
        let mut tr = Trace::new();
        writing_first::solve_traced(&mut dev, &l, &b, &mut tr).unwrap();
        tr.render()
    };
    let (sf, wf) = (run_sf(1), run_wf(1));
    for threads in CLUSTER_COUNTS {
        assert_eq!(run_sf(threads), sf, "syncfree trace diverged at {threads}");
        assert_eq!(
            run_wf(threads),
            wf,
            "writing_first trace diverged at {threads}"
        );
    }
}

/// Sampled stall-attribution profiles, including the spans reconstructed
/// from fast-forwarded spins, must survive clustering bit-exactly.
#[test]
fn clustered_profiles_bit_exact() {
    let l = gen::random_k(600, 3, 600, 42);
    let b = rhs(&l);
    let run = |threads: usize| {
        let mut dev = GpuDevice::new(
            base_cfg()
                .with_profile(ProfileMode::sampled(64))
                .with_engine_threads(threads),
        );
        syncfree::solve(&mut dev, &l, &b).unwrap();
        format!("{:?}", dev.take_profiles())
    };
    let serial = run(1);
    for threads in CLUSTER_COUNTS {
        assert_eq!(run(threads), serial, "profile diverged at {threads}");
    }
}

/// Timeout diagnostics: a run that exhausts its cycle budget must report
/// the same error text — same cycle counts, same live-warp census — from
/// the clustered engine as from the serial one.
#[test]
fn clustered_timeout_diagnostics_match_serial() {
    let l = gen::chain(256, 1, 7);
    let b = rhs(&l);
    let mut cfg = base_cfg().with_spin_model(SpinModel::FastForward);
    cfg.max_cycles = 1_000; // far below the chain's dependency depth
    let run = |threads: usize| {
        let mut dev = GpuDevice::new(cfg.clone().with_engine_threads(threads));
        syncfree::solve(&mut dev, &l, &b).unwrap_err().to_string()
    };
    let serial = run(1);
    assert!(
        serial.contains("cycle budget"),
        "expected a timeout: {serial}"
    );
    for threads in CLUSTER_COUNTS {
        assert_eq!(run(threads), serial, "timeout text diverged at {threads}");
    }
}

/// A device with fewer SMs than requested clusters must clamp silently and
/// still match — the edge where cluster partitions become single-SM.
#[test]
fn cluster_count_above_sm_count_clamps() {
    let l = paper_example();
    let b = rhs(&l);
    let mut cfg = base_cfg();
    cfg.sm_count = 2;
    let serial = observe(syncfree::solve as Solve, &l, &b, &cfg, 1);
    for threads in [2, 3, 64] {
        let clustered = observe(syncfree::solve as Solve, &l, &b, &cfg, threads);
        assert_eq!(clustered, serial, "diverged at {threads} threads on 2 SMs");
    }
}
