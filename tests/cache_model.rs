//! Differential suite for the finite L1/L2 sector cache model
//! (`DeviceConfig::with_cache`, DESIGN.md §13). Two contracts:
//!
//! 1. **Off is invisible.** The model defaults to off (`cache: None`); a
//!    default config must count zero cache-probe events, and arming the
//!    model must never move a solution bit on the CSR-family kernels — the
//!    cache reshapes *timing*, the FLOP order per row is fixed by the
//!    kernel. (The CSC scatter kernel's atomic-add order is timing-
//!    dependent, so it promises closeness instead.)
//! 2. **On is deterministic.** With the cache armed, every observable —
//!    stats (hit counters included), solution bits, error text — must be
//!    bit-identical across 1/2/4/8 engine clusters, under every memory
//!    model × spin model combination, exactly like the cache-off engine
//!    (`engine_cluster.rs`).

use capellini_sptrsv::core::kernels::{
    cusparse_like, hybrid, levelset, syncfree, syncfree_csc, two_phase, writing_first,
};
use capellini_sptrsv::prelude::*;
use capellini_sptrsv::simt::{CacheConfig, GpuDevice};
use capellini_sptrsv::sparse::{gen, paper_example};

type Solve =
    fn(
        &mut GpuDevice,
        &LowerTriangularCsr,
        &[f64],
    ) -> Result<capellini_sptrsv::core::kernels::SimSolve, capellini_sptrsv::simt::SimtError>;

const CLUSTER_COUNTS: [usize; 3] = [2, 4, 8];

fn kernels() -> Vec<(&'static str, Solve)> {
    vec![
        ("writing_first", writing_first::solve as Solve),
        ("syncfree", syncfree::solve as Solve),
        ("syncfree_csc", syncfree_csc::solve as Solve),
        ("two_phase", two_phase::solve as Solve),
        ("levelset", levelset::solve as Solve),
        ("cusparse_like", cusparse_like::solve as Solve),
        ("hybrid", hybrid::solve as Solve),
    ]
}

fn matrices() -> Vec<(&'static str, LowerTriangularCsr)> {
    vec![
        ("paper8", paper_example()),
        ("chain256", gen::chain(256, 1, 7)),
        ("randomk", gen::random_k(600, 3, 600, 42)),
        ("banded", gen::banded(400, 5, 0.6, 7)),
    ]
}

fn base_cfg() -> DeviceConfig {
    DeviceConfig::pascal_like().scaled_down(4)
}

fn cached_cfg() -> DeviceConfig {
    base_cfg().with_cache(CacheConfig::small())
}

fn rhs(l: &LowerTriangularCsr) -> Vec<f64> {
    let x_true: Vec<f64> = (0..l.n()).map(|i| (i % 13) as f64 - 6.0).collect();
    linalg::rhs_for_solution(l, &x_true)
}

/// Renders everything observable about one run into a comparable string
/// (same shape as `engine_cluster.rs::observe`).
fn observe(
    solve: Solve,
    l: &LowerTriangularCsr,
    b: &[f64],
    cfg: &DeviceConfig,
    threads: usize,
) -> String {
    let mut dev = GpuDevice::new(cfg.clone().with_engine_threads(threads));
    let body = match solve(&mut dev, l, b) {
        Ok(o) => {
            let bits: Vec<u64> = o.x.iter().map(|v| v.to_bits()).collect();
            format!("ok stats={:?} xbits={bits:?}", o.stats)
        }
        Err(e) => format!("err={e}"),
    };
    format!("{body} heap_events={}", dev.last_launch_heap_events())
}

// ------------------------------------------------------ contract 1: off

/// A config that never called `with_cache` must count zero cache-probe
/// events on every kernel (`l2_hits` is shared with the legacy infinite-L2
/// accounting and is exempt).
#[test]
fn default_config_counts_no_cache_probes() {
    let cfg = base_cfg();
    for (mname, l) in &matrices() {
        let b = rhs(l);
        for (name, solve) in &kernels() {
            let mut dev = GpuDevice::new(cfg.clone());
            let sol = solve(&mut dev, l, &b).unwrap_or_else(|e| panic!("{name}/{mname}: {e}"));
            assert_eq!(
                (
                    sol.stats.l1_hits,
                    sol.stats.l1_misses,
                    sol.stats.l2_misses,
                    sol.stats.sector_evictions,
                ),
                (0, 0, 0, 0),
                "{name}/{mname}: cache-off run counted cache-probe events"
            );
        }
    }
}

/// Arming the cache changes latencies and counters, never answers: every
/// CSR-family kernel reads its dependencies in a row-fixed order, so the
/// solution bits must match the cache-off run exactly. The CSC kernel
/// scatters partial sums with atomic adds whose *order* is timing-
/// dependent, so there the contract is numerical closeness, not bit
/// equality. Either way the armed model must actually probe.
#[test]
fn arming_the_cache_never_moves_solution_bits() {
    let (off, on) = (base_cfg(), cached_cfg());
    for (mname, l) in &matrices() {
        let b = rhs(l);
        for (name, solve) in &kernels() {
            let mut dev_off = GpuDevice::new(off.clone());
            let mut dev_on = GpuDevice::new(on.clone());
            let sol_off =
                solve(&mut dev_off, l, &b).unwrap_or_else(|e| panic!("{name}/{mname}: {e}"));
            let sol_on =
                solve(&mut dev_on, l, &b).unwrap_or_else(|e| panic!("{name}/{mname}: {e}"));
            if *name == "syncfree_csc" {
                linalg::assert_solutions_close(&sol_on.x, &sol_off.x, 1e-11);
            } else {
                assert_eq!(
                    sol_on.x.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    sol_off.x.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "{name}/{mname}: arming the cache moved solution bits"
                );
            }
            assert!(
                sol_on.stats.l1_hits + sol_on.stats.l1_misses > 0,
                "{name}/{mname}: armed cache model probed nothing"
            );
        }
    }
}

/// The hit-rate helpers stay inert with the model off and report sane
/// rates with it on.
#[test]
fn hit_rate_helpers_are_sane() {
    let l = gen::random_k(600, 3, 600, 42);
    let b = rhs(&l);
    let mut dev = GpuDevice::new(base_cfg());
    let off = syncfree::solve(&mut dev, &l, &b).unwrap();
    assert_eq!(off.stats.l1_hit_rate(), 0.0);
    let mut dev = GpuDevice::new(cached_cfg());
    let on = syncfree::solve(&mut dev, &l, &b).unwrap();
    let rate = on.stats.l1_hit_rate();
    assert!((0.0..=1.0).contains(&rate), "hit rate {rate} out of range");
    assert!(rate > 0.0, "a CSR walk should hit L1 at least once");
}

// ------------------------------------------------ contract 2: determinism

fn diff_all(cfg: &DeviceConfig) {
    for (mname, l) in &matrices() {
        let b = rhs(l);
        for (name, solve) in &kernels() {
            let serial = observe(*solve, l, &b, cfg, 1);
            for threads in CLUSTER_COUNTS {
                let clustered = observe(*solve, l, &b, cfg, threads);
                assert_eq!(
                    clustered, serial,
                    "{name} on {mname}: diverged at {threads} engine threads"
                );
            }
        }
    }
}

#[test]
fn cached_clusters_bit_exact_sc_replay() {
    diff_all(&cached_cfg().with_spin_model(SpinModel::Replay));
}

#[test]
fn cached_clusters_bit_exact_sc_fastforward() {
    diff_all(&cached_cfg().with_spin_model(SpinModel::FastForward));
}

#[test]
fn cached_clusters_bit_exact_relaxed_replay() {
    diff_all(
        &cached_cfg()
            .with_memory_model(MemoryModel::relaxed(2_000))
            .with_spin_model(SpinModel::Replay),
    );
}

#[test]
fn cached_clusters_bit_exact_relaxed_fastforward() {
    diff_all(
        &cached_cfg()
            .with_memory_model(MemoryModel::relaxed(2_000))
            .with_spin_model(SpinModel::FastForward),
    );
}

#[test]
fn cached_clusters_bit_exact_racecheck() {
    diff_all(
        &cached_cfg()
            .with_memory_model(MemoryModel::racecheck(2_000))
            .with_spin_model(SpinModel::FastForward),
    );
}

/// Two identical solves on fresh devices report identical stats — the
/// probe sequence (and hence LRU state and every hit counter) is a pure
/// function of the launch.
#[test]
fn repeated_launches_report_identical_hit_rates() {
    let l = gen::random_k(600, 3, 600, 42);
    let b = rhs(&l);
    let run = || {
        let mut dev = GpuDevice::new(cached_cfg());
        let sol = syncfree::solve(&mut dev, &l, &b).unwrap();
        format!("{:?}", sol.stats)
    };
    assert_eq!(run(), run(), "two identical cached solves diverged");
}
