//! Differential fuzzing: random structured matrices and right-hand sides,
//! every live GPU algorithm against the serial CSR reference, under both the
//! default sequentially-consistent model and the relaxed store-buffer model.
//! A second battery drives near-singular (subnormal-diagonal) systems and
//! checks that inf/NaN *classes* propagate exactly like `reference.rs` —
//! classification is order-independent under IEEE-754 addition, so it holds
//! even for kernels that reduce partial sums in a different order.

use capellini_sptrsv::core::Algorithm;
use capellini_sptrsv::prelude::*;
use capellini_sptrsv::sparse::{CooMatrix, CsrMatrix};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn models() -> [(&'static str, MemoryModel); 2] {
    [
        ("sc", MemoryModel::SequentiallyConsistent),
        ("relaxed", MemoryModel::relaxed(2_000)),
    ]
}

fn random_matrix(rng: &mut SmallRng) -> (String, LowerTriangularCsr) {
    let n = rng.gen_range(60..300);
    let seed: u64 = rng.gen_range(0..1 << 20);
    match rng.gen_range(0..5u32) {
        0 => (
            format!("random_k(n={n}, {seed})"),
            gen::random_k(n, 3, n, seed),
        ),
        1 => (
            format!("banded(n={n}, {seed})"),
            gen::banded(n, 12, 0.4, seed),
        ),
        2 => (
            format!("powerlaw(n={n}, {seed})"),
            gen::powerlaw(n, 3.0, seed),
        ),
        3 => (
            format!("layered(n={n}, {seed})"),
            gen::layered(n, 3, 4, seed),
        ),
        _ => (format!("chain(n={n}, {seed})"), gen::chain(n, 2, seed)),
    }
}

#[test]
fn random_systems_agree_with_the_serial_reference_under_both_models() {
    let mut rng = SmallRng::seed_from_u64(0xF077_BA11);
    let base = DeviceConfig::pascal_like().scaled_down(4);
    for _trial in 0..8 {
        let (tag, l) = random_matrix(&mut rng);
        let b: Vec<f64> = (0..l.n()).map(|_| rng.gen_range(-8.0..=8.0)).collect();
        let x_ref = solve_serial_csr(&l, &b);
        for (mname, model) in models() {
            let cfg = base.clone().with_memory_model(model);
            for algo in Algorithm::all_live() {
                let rep = solve_simulated(&cfg, &l, &b, algo)
                    .unwrap_or_else(|e| panic!("{tag}/{}/{mname}: {e}", algo.label()));
                linalg::assert_solutions_close(&rep.x, &x_ref, 1e-9);
            }
        }
    }
}

/// IEEE-754 class of a solve output — the only thing that is deterministic
/// once infinities enter the arithmetic, independent of reduction order.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
enum Class {
    Finite,
    PosInf,
    NegInf,
    Nan,
}

fn classify(v: f64) -> Class {
    if v.is_nan() {
        Class::Nan
    } else if v == f64::INFINITY {
        Class::PosInf
    } else if v == f64::NEG_INFINITY {
        Class::NegInf
    } else {
        Class::Finite
    }
}

/// A lower-triangular chain where some diagonal entries are subnormal
/// (`5e-324`), so their rows divide a finite numerator by almost-zero and
/// explode to ±inf; downstream rows mix those infinities into NaN.
fn near_singular_matrix(rng: &mut SmallRng) -> LowerTriangularCsr {
    let n = rng.gen_range(40..120);
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        if i > 0 {
            coo.push(i as u32, (i - 1) as u32, rng.gen_range(0.25..=1.5));
        }
        if i > 4 && rng.gen_bool(0.2) {
            coo.push(
                i as u32,
                rng.gen_range(0..(i as u32) - 2),
                rng.gen_range(-1.5..=-0.25),
            );
        }
        let diag = if rng.gen_bool(0.15) {
            5e-324
        } else {
            rng.gen_range(1.0..=2.0)
        };
        coo.push(i as u32, i as u32, diag);
    }
    LowerTriangularCsr::try_new(CsrMatrix::from_coo(&coo)).unwrap()
}

#[test]
fn near_singular_diagonals_propagate_inf_nan_like_the_reference() {
    let mut rng = SmallRng::seed_from_u64(0x5EED_CAFE);
    let base = DeviceConfig::pascal_like().scaled_down(4);
    let mut saw_inf = false;
    let mut saw_nan = false;
    for _trial in 0..6 {
        let l = near_singular_matrix(&mut rng);
        let b: Vec<f64> = (0..l.n()).map(|_| rng.gen_range(1.0..=4.0)).collect();
        let x_ref = solve_serial_csr(&l, &b);
        let ref_classes: Vec<Class> = x_ref.iter().map(|&v| classify(v)).collect();
        saw_inf |= ref_classes
            .iter()
            .any(|&c| c == Class::PosInf || c == Class::NegInf);
        saw_nan |= ref_classes.contains(&Class::Nan);
        for (mname, model) in models() {
            let cfg = base.clone().with_memory_model(model);
            for algo in Algorithm::all_live() {
                let rep = solve_simulated(&cfg, &l, &b, algo)
                    .unwrap_or_else(|e| panic!("near-singular/{}/{mname}: {e}", algo.label()));
                for (i, (&got, &want)) in rep.x.iter().zip(&x_ref).enumerate() {
                    assert_eq!(
                        classify(got),
                        ref_classes[i],
                        "row {i}: {}/{mname} got {got}, reference {want}",
                        algo.label()
                    );
                    if ref_classes[i] == Class::Finite && want.abs() < 1e100 {
                        assert!(
                            (got - want).abs() <= 1e-9 * want.abs().max(1.0),
                            "row {i}: {}/{mname} finite value drifted: {got} vs {want}",
                            algo.label()
                        );
                    }
                }
            }
        }
    }
    // The generator must actually exercise the non-finite paths.
    assert!(
        saw_inf,
        "fuzzer never produced an infinity — tighten the generator"
    );
    assert!(
        saw_nan,
        "fuzzer never produced a NaN — tighten the generator"
    );
}
