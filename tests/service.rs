//! Service-layer differential suite: everything the multi-tenant serving
//! layer returns must be **bit-identical** to what a fresh serial
//! [`SolverSession`] would have produced for the same (matrix, rhs) — no
//! matter how requests raced, which batches they coalesced into, or whether
//! their session was evicted and re-admitted in between.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Duration;

use capellini_sptrsv::core::{
    Algorithm, MatrixHandle, ServiceConfig, ServiceError, SolverService, SolverSession,
};
use capellini_sptrsv::prelude::*;
use capellini_sptrsv::sparse::gen;

fn device() -> DeviceConfig {
    DeviceConfig::pascal_like().scaled_down(4)
}

/// A deterministic rhs unique to (matrix index, request index).
fn rhs(n: usize, matrix: usize, req: usize) -> Vec<f64> {
    (0..n)
        .map(|i| ((i * (2 * matrix + 3) + 7 * req + 1) % 29) as f64 - 14.0)
        .collect()
}

/// The mixed matrix population: three different shapes, one of which
/// recommends Writing-First and one SyncFree, so the service exercises both
/// dedicated multi-RHS kernels.
fn population() -> Vec<MatrixHandle> {
    vec![
        MatrixHandle::new(gen::ultra_sparse_wide(600, 6, 1, 71)),
        MatrixHandle::new(gen::dense_band(220, 12, 72)),
        MatrixHandle::new(gen::powerlaw(400, 2.6, 73)),
    ]
}

/// Reference bits: a fresh serial session per matrix, solving each request's
/// rhs one at a time.
fn reference_solutions(
    mats: &[MatrixHandle],
    requests: &[(usize, usize)],
) -> HashMap<(usize, usize), Vec<f64>> {
    let mut out = HashMap::new();
    for (mi, handle) in mats.iter().enumerate() {
        let mut session = SolverSession::new(&device(), handle.matrix().clone());
        for &(m, r) in requests.iter().filter(|&&(m, _)| m == mi) {
            let b = rhs(handle.matrix().n(), m, r);
            out.insert((m, r), session.solve(&b).expect("reference solve").x);
        }
    }
    out
}

/// The tentpole differential: N concurrent tenants hammering a mixed matrix
/// population through one coalescing service. Every response must carry
/// exactly the bits of the fresh serial session solves, and the shared-hot-
/// matrix contention must actually coalesce.
#[test]
fn concurrent_tenants_are_bit_identical_to_serial_sessions() {
    let mats = population();
    // 6 tenants x 8 requests; matrix skewed hot towards index 0 so batches
    // form on it under contention.
    let mut requests: Vec<(usize, usize)> = Vec::new();
    for t in 0..6usize {
        for k in 0..8usize {
            let m = if (t + k) % 3 == 0 {
                (t + k) % mats.len()
            } else {
                0
            };
            requests.push((m, t * 8 + k));
        }
    }
    let expected = reference_solutions(&mats, &requests);

    let service = SolverService::new(
        ServiceConfig::new(device())
            .with_coalesce_window(Duration::from_millis(2))
            .with_max_batch(8),
    );
    let mismatches = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for t in 0..6usize {
            let service = &service;
            let mats = &mats;
            let expected = &expected;
            let mismatches = &mismatches;
            let my_requests: Vec<(usize, usize)> = requests[t * 8..(t + 1) * 8].to_vec();
            scope.spawn(move || {
                let tenant = format!("tenant-{t}");
                for (m, r) in my_requests {
                    let b = rhs(mats[m].matrix().n(), m, r);
                    let resp = service
                        .solve(&tenant, &mats[m], &b)
                        .expect("no rejects at this depth bound");
                    let want = &expected[&(m, r)];
                    let ok = resp.x.len() == want.len()
                        && resp
                            .x
                            .iter()
                            .zip(want)
                            .all(|(a, e)| a.to_bits() == e.to_bits());
                    if !ok {
                        mismatches.lock().unwrap().push((m, r, resp.batch_size));
                    }
                }
            });
        }
    });
    assert!(
        mismatches.lock().unwrap().is_empty(),
        "service responses diverged from serial sessions: {:?}",
        mismatches.lock().unwrap()
    );
    let m = service.metrics();
    assert_eq!(m.solves, 48);
    assert_eq!(m.rejects, 0);
    assert!(m.launches <= m.solves);
    assert!(
        m.largest_batch >= 2,
        "hot-matrix contention should coalesce at least once (largest batch {})",
        m.largest_batch
    );
    // Per-tenant accounting adds up to the global view.
    let per_tenant: u64 = (0..6)
        .map(|t| {
            service
                .tenant_metrics(&format!("tenant-{t}"))
                .expect("tenant seen")
                .solves
        })
        .sum();
    assert_eq!(per_tenant, 48);
}

/// Eviction and re-admission must be invisible to correctness: force a
/// 1-shard, 1-session registry so every matrix switch evicts, then replay
/// the whole population twice and compare bits.
#[test]
fn eviction_and_readmission_stay_bit_identical() {
    let mats = population();
    let requests: Vec<(usize, usize)> = (0..2)
        .flat_map(|round| (0..mats.len()).map(move |m| (m, round * 10 + m)))
        .collect();
    let expected = reference_solutions(&mats, &requests);

    let service = SolverService::new(
        ServiceConfig::new(device())
            .with_shards(1)
            .with_sessions_per_shard(1),
    );
    for &(m, r) in &requests {
        let b = rhs(mats[m].matrix().n(), m, r);
        let resp = service.solve("cycler", &mats[m], &b).expect("served");
        let want = &expected[&(m, r)];
        for (i, (a, e)) in resp.x.iter().zip(want).enumerate() {
            assert_eq!(
                a.to_bits(),
                e.to_bits(),
                "matrix {m} request {r} row {i} diverged after eviction churn"
            );
        }
    }
    let metrics = service.metrics();
    assert!(
        metrics.evictions >= mats.len() as u64,
        "a capacity-1 registry cycling {} matrices twice must evict repeatedly (saw {})",
        mats.len(),
        metrics.evictions
    );
    assert!(metrics.sessions_created > mats.len() as u64);
    assert_eq!(metrics.resident_sessions, 1);
}

/// Admission control: a depth-bounded queue under a long coalesce window
/// rejects the overflow with the structured error, serves the rest, and
/// accounts both per tenant.
#[test]
fn overload_is_a_structured_reject() {
    let l = gen::powerlaw(200, 2.6, 74);
    let handle = MatrixHandle::new(l.clone());
    let service = SolverService::new(
        ServiceConfig::new(device())
            .with_coalesce_window(Duration::from_millis(150))
            .with_max_batch(2)
            .with_max_queue_depth(1),
    );
    let barrier = std::sync::Barrier::new(4);
    let outcomes = Mutex::new((0u64, 0u64)); // (served, overloaded)
    std::thread::scope(|scope| {
        for t in 0..4 {
            let service = &service;
            let handle = &handle;
            let barrier = &barrier;
            let outcomes = &outcomes;
            scope.spawn(move || {
                let b = rhs(handle.matrix().n(), 0, t);
                barrier.wait();
                match service.solve(&format!("burst-{t}"), handle, &b) {
                    Ok(resp) => {
                        assert!(!resp.x.is_empty());
                        outcomes.lock().unwrap().0 += 1;
                    }
                    Err(ServiceError::Overloaded { fingerprint, depth }) => {
                        assert_eq!(fingerprint, handle.fingerprint());
                        assert_eq!(depth, 1);
                        outcomes.lock().unwrap().1 += 1;
                    }
                    Err(other) => panic!("unexpected error: {other}"),
                }
            });
        }
    });
    let (served, overloaded) = *outcomes.lock().unwrap();
    assert_eq!(served + overloaded, 4);
    assert!(
        overloaded >= 1,
        "4 simultaneous arrivals against depth bound 1 must reject at least one"
    );
    let m = service.metrics();
    assert_eq!(m.rejects, overloaded);
    assert_eq!(m.solves, served);
}

/// The coalesce window actually merges near-simultaneous arrivals: a burst
/// on one matrix through a generous window must produce at least one launch
/// serving multiple right-hand sides, with (still) bit-exact answers.
#[test]
fn bursts_coalesce_into_multi_rhs_launches() {
    let l = gen::ultra_sparse_wide(500, 6, 1, 75);
    let handle = MatrixHandle::new(l.clone());
    let requests: Vec<(usize, usize)> = (0..12).map(|r| (0usize, r)).collect();
    let expected = reference_solutions(std::slice::from_ref(&handle), &requests);

    let service = SolverService::new(
        ServiceConfig::new(device())
            .with_coalesce_window(Duration::from_millis(40))
            .with_max_batch(8),
    );
    // Warm the session first so the burst below races only the queue, not
    // the one-time analysis.
    let warm = rhs(l.n(), 0, 999);
    service.solve("warmer", &handle, &warm).expect("warm-up");

    let mismatches = Mutex::new(0usize);
    std::thread::scope(|scope| {
        for &(m, r) in &requests {
            let service = &service;
            let handle = &handle;
            let expected = &expected;
            let mismatches = &mismatches;
            scope.spawn(move || {
                let b = rhs(handle.matrix().n(), m, r);
                let resp = service.solve("burst", handle, &b).expect("served");
                let want = &expected[&(m, r)];
                if !resp
                    .x
                    .iter()
                    .zip(want)
                    .all(|(a, e)| a.to_bits() == e.to_bits())
                {
                    *mismatches.lock().unwrap() += 1;
                }
            });
        }
    });
    assert_eq!(*mismatches.lock().unwrap(), 0);
    let m = service.metrics();
    assert_eq!(m.solves, 13);
    assert!(
        m.largest_batch > 1,
        "a 12-request burst through a 40 ms window must coalesce (largest batch {})",
        m.largest_batch
    );
    assert!(m.mean_batch() > 1.0 || m.largest_batch > 1);
}

/// The algorithm override pins every session to one kernel; responses stay
/// bit-identical to serial sessions of that same algorithm.
#[test]
fn forced_algorithm_round_trips_bit_exact() {
    let l = gen::dense_band(180, 10, 76);
    let handle = MatrixHandle::new(l.clone());
    for algo in [Algorithm::CusparseLike, Algorithm::CapelliniWritingFirst] {
        let service = SolverService::new(ServiceConfig::new(device()).with_algorithm(algo));
        let b = rhs(l.n(), 0, 3);
        let resp = service.solve("pinned", &handle, &b).expect("served");
        assert_eq!(resp.algorithm, algo);
        let mut reference = SolverSession::with_algorithm(&device(), l.clone(), algo);
        let expect = reference.solve(&b).expect("reference");
        for (a, e) in resp.x.iter().zip(&expect.x) {
            assert_eq!(a.to_bits(), e.to_bits(), "{}", algo.label());
        }
    }
}
