//! Randomized-input tests (seeded, fully deterministic) over the core
//! invariants:
//!
//! * every solver agrees with Algorithm 1 on arbitrary unit-lower systems,
//! * level-set analysis strictly dominates dependencies and partitions rows,
//! * format conversions round-trip bit-exactly,
//! * Equation 1 is monotone in its two drivers,
//! * Matrix Market serialization round-trips.
//!
//! Formerly written with proptest; rewritten as explicit seeded loops so the
//! workspace builds with no external dev-dependencies. Every case is derived
//! from a fixed `SmallRng` seed, so failures reproduce exactly.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use capellini_sptrsv::core::prelude::*;
use capellini_sptrsv::core::Algorithm;
use capellini_sptrsv::prelude::*;
use capellini_sptrsv::sparse::io;
use capellini_sptrsv::sparse::{parallel_granularity, CsrMatrix};

/// An arbitrary unit-lower-triangular system of 1..=96 rows, each row
/// drawing up to 6 dependencies from arbitrary earlier rows.
fn arb_lower(rng: &mut SmallRng) -> LowerTriangularCsr {
    let n = rng.gen_range(1..=96usize);
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        let deps = rng.gen_range(0..=6.min(i));
        let k = deps.max(1) as f64;
        for _ in 0..deps {
            let c = rng.gen_range(0..i as u32); // strictly earlier row
            let v = rng.gen_range(-1.0..=1.0f64);
            coo.push(i as u32, c, v / k);
        }
        coo.push(i as u32, i as u32, 1.0);
    }
    coo.compress();
    LowerTriangularCsr::try_new(CsrMatrix::from_coo(&coo))
        .expect("constructed system is unit lower")
}

fn arb_rhs(rng: &mut SmallRng, n: usize, amp: f64) -> Vec<f64> {
    (0..n).map(|_| rng.gen_range(-amp..=amp)).collect()
}

#[test]
fn every_algorithm_matches_the_reference() {
    let mut rng = SmallRng::seed_from_u64(0xA110_0001);
    for _ in 0..48 {
        let l = arb_lower(&mut rng);
        let b = arb_rhs(&mut rng, l.n(), 8.0);
        let x_ref = solve_serial_csr(&l, &b);
        let mut cfg = DeviceConfig::pascal_like().scaled_down(4);
        cfg.deadlock_window = 500_000;
        for algo in Algorithm::all_live() {
            let rep = solve_simulated(&cfg, &l, &b, algo).unwrap();
            linalg::assert_solutions_close(&rep.x, &x_ref, 1e-10);
        }
        let x_cpu = solve_selfsched(&l, &b, 3, Distribution::Cyclic);
        linalg::assert_solutions_close(&x_cpu, &x_ref, 1e-10);
    }
}

#[test]
fn level_analysis_invariants() {
    let mut rng = SmallRng::seed_from_u64(0xA110_0002);
    for _ in 0..48 {
        let l = arb_lower(&mut rng);
        let levels = LevelSets::analyze(&l);
        // Levels strictly dominate dependencies.
        for i in 0..l.n() {
            for &dep in l.row_deps(i) {
                assert!(levels.level_of(i) > levels.level_of(dep as usize));
            }
        }
        // Rows are partitioned.
        let mut seen: Vec<u32> = levels.order().to_vec();
        seen.sort_unstable();
        assert_eq!(seen, (0..l.n() as u32).collect::<Vec<_>>());
        // Width x depth accounting.
        let total: usize = (0..levels.n_levels())
            .map(|k| levels.rows_in_level(k).len())
            .sum();
        assert_eq!(total, l.n());
        // Level 0 rows have no dependencies, and some row is at level 0.
        assert!(!levels.rows_in_level(0).is_empty());
        for &r in levels.rows_in_level(0) {
            assert!(l.row_deps(r as usize).is_empty());
        }
    }
}

#[test]
fn format_round_trips() {
    let mut rng = SmallRng::seed_from_u64(0xA110_0003);
    for _ in 0..48 {
        let l = arb_lower(&mut rng);
        let csr = l.csr();
        assert_eq!(&csr.to_csc().to_csr(), csr);
        assert_eq!(&CsrMatrix::from_coo(&csr.to_coo()), csr);
        let mtx = io::to_matrix_market_string(csr);
        let back = CsrMatrix::from_coo(&io::parse_matrix_market(&mtx).unwrap());
        assert_eq!(&back, csr);
    }
}

#[test]
fn csc_solver_matches_csr_solver() {
    let mut rng = SmallRng::seed_from_u64(0xA110_0004);
    for _ in 0..48 {
        let l = arb_lower(&mut rng);
        let b = arb_rhs(&mut rng, l.n(), 4.0);
        let x_csr = solve_serial_csr(&l, &b);
        let x_csc = solve_serial_csc(&l.csr().to_csc(), &b);
        linalg::assert_solutions_close(&x_csc, &x_csr, 1e-10);
    }
}

#[test]
fn spmv_of_solution_reproduces_rhs() {
    let mut rng = SmallRng::seed_from_u64(0xA110_0005);
    for _ in 0..48 {
        let l = arb_lower(&mut rng);
        let b = arb_rhs(&mut rng, l.n(), 4.0);
        let x = solve_serial_csr(&l, &b);
        assert!(linalg::residual_inf(&l, &x, &b) < 1e-9);
    }
}

#[test]
fn granularity_monotone() {
    let mut rng = SmallRng::seed_from_u64(0xA110_0006);
    for _ in 0..48 {
        let n_level = rng.gen_range(2.0..=1e6f64);
        let nnz_row = rng.gen_range(1.5..=200.0f64);
        let g = parallel_granularity(n_level, nnz_row);
        assert!(g.is_finite());
        // More components per level => higher granularity.
        assert!(parallel_granularity(n_level * 4.0, nnz_row) > g);
        // Denser rows => lower granularity.
        assert!(parallel_granularity(n_level, nnz_row + 8.0) < g);
    }
}

#[test]
fn stats_are_consistent() {
    let mut rng = SmallRng::seed_from_u64(0xA110_0007);
    for _ in 0..48 {
        let l = arb_lower(&mut rng);
        let s = MatrixStats::compute(&l);
        assert_eq!(s.n, l.n());
        assert_eq!(s.nnz, l.nnz());
        assert!((s.nnz_row - s.nnz as f64 / s.n as f64).abs() < 1e-12);
        assert!((s.n_level - s.n as f64 / s.n_levels as f64).abs() < 1e-12);
        assert!(s.max_level_width <= s.n);
        assert_eq!(s.solve_flops(), 2 * s.nnz as u64);
    }
}

// Simulator determinism deserves more cases than the expensive all-solver
// comparison: same input, same cycle count, bit-identical solution.
#[test]
fn simulation_is_deterministic() {
    let mut rng = SmallRng::seed_from_u64(0xA110_0008);
    for _ in 0..16 {
        let l = arb_lower(&mut rng);
        let b = vec![1.0; l.n()];
        let cfg = DeviceConfig::turing_like().scaled_down(4);
        let a = solve_simulated(&cfg, &l, &b, Algorithm::CapelliniWritingFirst).unwrap();
        let c = solve_simulated(&cfg, &l, &b, Algorithm::CapelliniWritingFirst).unwrap();
        assert_eq!(a.x, c.x);
        assert_eq!(a.stats, c.stats);
    }
}
