//! Property-based tests (proptest) over the core invariants:
//!
//! * every solver agrees with Algorithm 1 on arbitrary unit-lower systems,
//! * level-set analysis strictly dominates dependencies and partitions rows,
//! * format conversions round-trip bit-exactly,
//! * Equation 1 is monotone in its two drivers,
//! * Matrix Market serialization round-trips.

use proptest::collection::vec;
use proptest::prelude::*;

use capellini_sptrsv::core::prelude::*;
use capellini_sptrsv::core::Algorithm;
use capellini_sptrsv::prelude::*;
use capellini_sptrsv::sparse::io;
use capellini_sptrsv::sparse::{parallel_granularity, CsrMatrix};

/// Strategy: an arbitrary unit-lower-triangular system of 1..=96 rows, each
/// row drawing up to 6 dependencies from arbitrary earlier rows.
fn arb_lower() -> impl Strategy<Value = LowerTriangularCsr> {
    (1usize..=96)
        .prop_flat_map(|n| {
            let rows = (0..n)
                .map(|i| vec((0..n as u32, -1.0f64..1.0), 0..=6.min(i)).prop_map(move |deps| (i, deps)))
                .collect::<Vec<_>>();
            (Just(n), rows)
        })
        .prop_map(|(n, rows)| {
            let mut coo = CooMatrix::new(n, n);
            #[allow(clippy::needless_range_loop)]
            for (i, deps) in rows {
                let k = deps.len().max(1) as f64;
                for (c, v) in deps {
                    let c = c % (i.max(1) as u32); // strictly earlier row
                    if (c as usize) < i {
                        coo.push(i as u32, c, v / k);
                    }
                }
                coo.push(i as u32, i as u32, 1.0);
            }
            coo.compress();
            LowerTriangularCsr::try_new(CsrMatrix::from_coo(&coo))
                .expect("constructed system is unit lower")
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn every_algorithm_matches_the_reference(l in arb_lower(), bx in vec(-8.0f64..8.0, 96)) {
        let b: Vec<f64> = (0..l.n()).map(|i| bx[i % bx.len()]).collect();
        let x_ref = solve_serial_csr(&l, &b);
        let mut cfg = DeviceConfig::pascal_like().scaled_down(4);
        cfg.deadlock_window = 500_000;
        for algo in Algorithm::all_live() {
            let rep = solve_simulated(&cfg, &l, &b, algo).unwrap();
            linalg::assert_solutions_close(&rep.x, &x_ref, 1e-10);
        }
        let x_cpu = solve_selfsched(&l, &b, 3, Distribution::Cyclic);
        linalg::assert_solutions_close(&x_cpu, &x_ref, 1e-10);
    }

    #[test]
    fn level_analysis_invariants(l in arb_lower()) {
        let levels = LevelSets::analyze(&l);
        // Levels strictly dominate dependencies.
        for i in 0..l.n() {
            for &dep in l.row_deps(i) {
                prop_assert!(levels.level_of(i) > levels.level_of(dep as usize));
            }
        }
        // Rows are partitioned.
        let mut seen: Vec<u32> = levels.order().to_vec();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..l.n() as u32).collect::<Vec<_>>());
        // Width x depth accounting.
        let total: usize = (0..levels.n_levels()).map(|k| levels.rows_in_level(k).len()).sum();
        prop_assert_eq!(total, l.n());
        // Level 0 rows have no dependencies, and some row is at level 0.
        prop_assert!(!levels.rows_in_level(0).is_empty());
        for &r in levels.rows_in_level(0) {
            prop_assert!(l.row_deps(r as usize).is_empty());
        }
    }

    #[test]
    fn format_round_trips(l in arb_lower()) {
        let csr = l.csr();
        prop_assert_eq!(&csr.to_csc().to_csr(), csr);
        prop_assert_eq!(&CsrMatrix::from_coo(&csr.to_coo()), csr);
        let mtx = io::to_matrix_market_string(csr);
        let back = CsrMatrix::from_coo(&io::parse_matrix_market(&mtx).unwrap());
        prop_assert_eq!(&back, csr);
    }

    #[test]
    fn csc_solver_matches_csr_solver(l in arb_lower(), bx in vec(-4.0f64..4.0, 96)) {
        let b: Vec<f64> = (0..l.n()).map(|i| bx[i % bx.len()]).collect();
        let x_csr = solve_serial_csr(&l, &b);
        let x_csc = solve_serial_csc(&l.csr().to_csc(), &b);
        linalg::assert_solutions_close(&x_csc, &x_csr, 1e-10);
    }

    #[test]
    fn spmv_of_solution_reproduces_rhs(l in arb_lower(), bx in vec(-4.0f64..4.0, 96)) {
        let b: Vec<f64> = (0..l.n()).map(|i| bx[i % bx.len()]).collect();
        let x = solve_serial_csr(&l, &b);
        prop_assert!(linalg::residual_inf(&l, &x, &b) < 1e-9);
    }

    #[test]
    fn granularity_monotone(n_level in 2.0f64..1e6, nnz_row in 1.5f64..200.0) {
        let g = parallel_granularity(n_level, nnz_row);
        prop_assert!(g.is_finite());
        // More components per level => higher granularity.
        prop_assert!(parallel_granularity(n_level * 4.0, nnz_row) > g);
        // Denser rows => lower granularity.
        prop_assert!(parallel_granularity(n_level, nnz_row + 8.0) < g);
    }

    #[test]
    fn stats_are_consistent(l in arb_lower()) {
        let s = MatrixStats::compute(&l);
        prop_assert_eq!(s.n, l.n());
        prop_assert_eq!(s.nnz, l.nnz());
        prop_assert!((s.nnz_row - s.nnz as f64 / s.n as f64).abs() < 1e-12);
        prop_assert!((s.n_level - s.n as f64 / s.n_levels as f64).abs() < 1e-12);
        prop_assert!(s.max_level_width <= s.n);
        prop_assert_eq!(s.solve_flops(), 2 * s.nnz as u64);
    }
}

// Simulator determinism deserves more cases than the expensive all-solver
// comparison: same input, same cycle count, bit-identical solution.
proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn simulation_is_deterministic(l in arb_lower()) {
        let b = vec![1.0; l.n()];
        let cfg = DeviceConfig::turing_like().scaled_down(4);
        let a = solve_simulated(&cfg, &l, &b, Algorithm::CapelliniWritingFirst).unwrap();
        let c = solve_simulated(&cfg, &l, &b, Algorithm::CapelliniWritingFirst).unwrap();
        prop_assert_eq!(a.x, c.x);
        prop_assert_eq!(a.stats, c.stats);
    }
}
