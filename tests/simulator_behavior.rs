//! Integration tests of the paper's *mechanisms* on the simulator: the
//! Challenge-1 deadlock, the occupancy-driven crossover between thread-level
//! and warp-level execution, the Figure-6 boundary, preprocessing orderings,
//! and metric sanity.

use capellini_sptrsv::core::kernels::{naive, writing_first};
use capellini_sptrsv::core::{solve_simulated, Algorithm};
use capellini_sptrsv::prelude::*;
use capellini_sptrsv::simt::SimtError;

fn scaled(cfg: DeviceConfig) -> DeviceConfig {
    cfg.scaled_down(4)
}

#[test]
fn challenge1_naive_busywait_deadlocks_but_capellini_does_not() {
    // Chain: nearly every dependency is intra-warp.
    let l = gen::chain(256, 1, 9);
    let b = vec![1.0; l.n()];
    let mut cfg = scaled(DeviceConfig::pascal_like());
    cfg.deadlock_window = 200_000;

    let mut dev = capellini_sptrsv::simt::GpuDevice::new(cfg.clone());
    let err = naive::solve(&mut dev, &l, &b).unwrap_err();
    assert!(
        matches!(err, SimtError::Deadlock { .. }),
        "expected deadlock, got {err:?}"
    );

    let mut dev = capellini_sptrsv::simt::GpuDevice::new(cfg);
    let ok = writing_first::solve(&mut dev, &l, &b).expect("two-phase-free design stays live");
    let x_ref = capellini_sptrsv::core::solve_serial_csr(&l, &b);
    linalg::assert_solutions_close(&ok.x, &x_ref, 1e-10);
}

#[test]
fn capellini_dominates_on_high_granularity_matrices() {
    // The paper's headline claim, at our scale: clear speedup on wide-level,
    // sparse-row matrices on every platform.
    let l = gen::ultra_sparse_wide(24_000, 16, 1, 10);
    let b = vec![1.0; l.n()];
    for cfg in DeviceConfig::evaluation_platforms_scaled() {
        let cap = solve_simulated(&cfg, &l, &b, Algorithm::CapelliniWritingFirst).unwrap();
        let sf = solve_simulated(&cfg, &l, &b, Algorithm::SyncFree).unwrap();
        let speedup = cap.gflops / sf.gflops;
        assert!(
            speedup > 1.5,
            "{}: Capellini {:.2} vs SyncFree {:.2} (speedup {speedup:.2})",
            cfg.name,
            cap.gflops,
            sf.gflops
        );
    }
}

#[test]
fn syncfree_wins_on_dense_rows_with_wide_levels() {
    // The other half of Figure 6's boundary.
    let l = gen::layered(12_000, 32, 16, 11);
    let b = vec![1.0; l.n()];
    let cfg = scaled(DeviceConfig::pascal_like());
    let cap = solve_simulated(&cfg, &l, &b, Algorithm::CapelliniWritingFirst).unwrap();
    let sf = solve_simulated(&cfg, &l, &b, Algorithm::SyncFree).unwrap();
    assert!(
        sf.gflops > cap.gflops,
        "SyncFree {:.2} should beat Capellini {:.2} at nnz_row = 33",
        sf.gflops,
        cap.gflops
    );
}

#[test]
fn capellini_reduces_instructions_and_raises_bandwidth() {
    // Figures 7-8 direction on a circuit-shaped matrix.
    let l = gen::layered(20_000, 4, 3, 12);
    let b = vec![1.0; l.n()];
    let cfg = scaled(DeviceConfig::pascal_like());
    let cap = solve_simulated(&cfg, &l, &b, Algorithm::CapelliniWritingFirst).unwrap();
    let sf = solve_simulated(&cfg, &l, &b, Algorithm::SyncFree).unwrap();
    assert!(cap.stats.warp_instructions * 2 < sf.stats.warp_instructions);
    assert!(cap.bandwidth_gbs > 2.0 * sf.bandwidth_gbs);
    // Dependency-poll share stays moderate for Capellini (the paper reports
    // 12.55%); the baselines' poll rates are a documented model divergence
    // (EXPERIMENTS.md): FIFO warp activation resolves their dependencies
    // before the first poll, so their share is near zero here.
    assert!(cap.stats.stall_pct() < 30.0, "{}", cap.stats.stall_pct());
}

#[test]
fn writing_first_beats_two_phase() {
    // §5.3 optimization analysis direction.
    let l = gen::powerlaw(16_000, 3.0, 13);
    let b = vec![1.0; l.n()];
    let cfg = scaled(DeviceConfig::pascal_like());
    let wf = solve_simulated(&cfg, &l, &b, Algorithm::CapelliniWritingFirst).unwrap();
    let tp = solve_simulated(&cfg, &l, &b, Algorithm::CapelliniTwoPhase).unwrap();
    assert!(
        wf.gflops > 1.5 * tp.gflops,
        "writing-first {:.2} vs two-phase {:.2}",
        wf.gflops,
        tp.gflops
    );
}

#[test]
fn preprocessing_ordering_is_stable_across_matrices() {
    // Table 1 / Table 2: none < low < low(x2) < high, for every matrix.
    let cfg = scaled(DeviceConfig::volta_like());
    for l in [
        gen::powerlaw(8_000, 3.0, 14),
        gen::stencil3d(16, 16, 16, 15),
    ] {
        let b = vec![1.0; l.n()];
        let pre = |algo| {
            solve_simulated(&cfg, &l, &b, algo)
                .unwrap()
                .preprocessing_ms
        };
        let cap = pre(Algorithm::CapelliniWritingFirst);
        let sf = pre(Algorithm::SyncFree);
        let cu = pre(Algorithm::CusparseLike);
        let lv = pre(Algorithm::LevelSet);
        assert!(cap < sf && sf < cu && cu < lv, "{cap} {sf} {cu} {lv}");
        assert!(
            lv / sf > 5.0,
            "level-set analysis must dominate: {lv} vs {sf}"
        );
    }
}

#[test]
fn levelset_pays_per_level_launch_overhead() {
    let deep = gen::chain(2_000, 1, 16); // 2000 levels
    let wide = gen::diagonal(2_000); // 1 level
    let cfg = scaled(DeviceConfig::pascal_like());
    let b = vec![1.0; 2_000];
    let d = solve_simulated(&cfg, &deep, &b, Algorithm::LevelSet).unwrap();
    let w = solve_simulated(&cfg, &wide, &b, Algorithm::LevelSet).unwrap();
    assert_eq!(d.stats.launches, 2_000);
    assert_eq!(w.stats.launches, 1);
    assert!(d.exec_ms > 50.0 * w.exec_ms);
}

#[test]
fn hybrid_tracks_the_better_pure_algorithm_on_homogeneous_inputs() {
    let cfg = scaled(DeviceConfig::pascal_like());
    // Sparse homogeneous input: hybrid should behave like thread-level.
    let sparse = gen::layered(10_000, 2, 4, 17);
    let b = vec![1.0; sparse.n()];
    let hy = solve_simulated(&cfg, &sparse, &b, Algorithm::Hybrid).unwrap();
    let cap = solve_simulated(&cfg, &sparse, &b, Algorithm::CapelliniWritingFirst).unwrap();
    assert!(
        hy.gflops > 0.8 * cap.gflops,
        "hybrid {:.2} vs capellini {:.2}",
        hy.gflops,
        cap.gflops
    );
    // Dense homogeneous input: hybrid should behave like warp-level.
    let dense = gen::layered(8_000, 32, 8, 18);
    let b = vec![1.0; dense.n()];
    let hy = solve_simulated(&cfg, &dense, &b, Algorithm::Hybrid).unwrap();
    let sf = solve_simulated(&cfg, &dense, &b, Algorithm::SyncFree).unwrap();
    assert!(
        hy.gflops > 0.8 * sf.gflops,
        "hybrid {:.2} vs syncfree {:.2}",
        hy.gflops,
        sf.gflops
    );
}

#[test]
fn metrics_are_internally_consistent() {
    let l = gen::powerlaw(6_000, 3.0, 19);
    let b = vec![1.0; l.n()];
    let cfg = scaled(DeviceConfig::turing_like());
    let rep = solve_simulated(&cfg, &l, &b, Algorithm::CapelliniWritingFirst).unwrap();
    let s = &rep.stats;
    assert!(s.thread_instructions >= s.warp_instructions);
    assert!(s.cycles > 0 && s.issue_ticks > 0);
    assert_eq!(s.warps_launched, (l.n() as u64).div_ceil(32));
    assert_eq!(s.lanes_retired, s.warps_launched * 32);
    // Traffic never exceeds footprint under the first-touch model (x is
    // both read and written; every count is rounded up to 32-byte sectors).
    let footprint = (l.nnz() * 12 + l.n() * 40) as u64;
    assert!(
        s.dram_read_bytes + s.dram_write_bytes <= footprint + 8192,
        "traffic {} exceeds footprint bound {footprint}",
        s.dram_read_bytes + s.dram_write_bytes
    );
    // ... and the derived rates agree with the raw counters.
    let t = s.cycles as f64 / (cfg.clock_ghz * 1e9);
    let bw = (s.dram_read_bytes + s.dram_write_bytes) as f64 / t / 1e9;
    assert!((bw - rep.bandwidth_gbs).abs() < 1e-9);
}

#[test]
fn empty_system_is_a_wellformed_noop_for_every_live_algorithm() {
    // n == 0 must not panic, divide by zero, or launch phantom warps: every
    // live algorithm returns an empty solution with finite metrics.
    let l = LowerTriangularCsr::try_new(
        capellini_sptrsv::sparse::CsrMatrix::new(0, 0, vec![0], vec![], vec![]).unwrap(),
    )
    .unwrap();
    let b: Vec<f64> = vec![];
    for cfg in DeviceConfig::evaluation_platforms_scaled() {
        for algo in Algorithm::all_live() {
            let rep = solve_simulated(&cfg, &l, &b, algo)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", algo.label(), cfg.name));
            assert!(rep.x.is_empty(), "{}: phantom solution", algo.label());
            assert_eq!(rep.stats.warps_launched, 0, "{}", algo.label());
            assert_eq!(rep.stats.lanes_retired, 0, "{}", algo.label());
            assert_eq!(rep.stats.thread_instructions, 0, "{}", algo.label());
            assert_eq!(rep.stats.dram_read_bytes + rep.stats.dram_write_bytes, 0);
            for v in [
                rep.exec_ms,
                rep.gflops,
                rep.bandwidth_gbs,
                rep.preprocessing_ms,
                rep.stats.issue_stall_pct(),
                rep.stats.l2_hit_rate(),
            ] {
                assert!(v.is_finite(), "{}: non-finite metric", algo.label());
            }
        }
    }
}

/// Degenerate schedules (the coarsening satellite): a 0-row system builds a
/// well-formed *empty* schedule, a diagonal-only system coalesces into
/// balanced one-level parallel units, and the Scheduled solve handles both
/// without panicking.
#[test]
fn degenerate_inputs_build_wellformed_schedules() {
    use capellini_sptrsv::sparse::{LevelSets, Schedule, UnitKind};
    let cfg = scaled(DeviceConfig::pascal_like());

    // 0 rows: empty schedule, zero units, zero warps launched.
    let empty = LowerTriangularCsr::try_new(
        capellini_sptrsv::sparse::CsrMatrix::new(0, 0, vec![0], vec![], vec![]).unwrap(),
    )
    .unwrap();
    let levels = LevelSets::analyze(&empty);
    let sched = Schedule::build_default(&empty, &levels, cfg.warp_size);
    assert_eq!(sched.n_units(), 0);
    assert_eq!(sched.n_rows(), 0);
    assert_eq!(sched.stats().depth, 0);
    let rep = solve_simulated(&cfg, &empty, &[], Algorithm::Scheduled).unwrap();
    assert!(rep.x.is_empty());
    assert_eq!(rep.stats.warps_launched, 0);

    // Diagonal-only: one level, split into lane-parallel units that cover
    // every row exactly once; the solve is exact. Rows with no off-diagonal
    // dependencies coarsen into dependency-parallel units (never Seq).
    let diag = gen::diagonal(97);
    let levels = LevelSets::analyze(&diag);
    let sched = Schedule::build_default(&diag, &levels, cfg.warp_size);
    assert_eq!(sched.stats().depth, 1, "diagonal has a single level");
    assert!(sched.n_units() >= 1);
    assert!((0..sched.n_units()).all(|u| sched.kind(u) != UnitKind::Seq));
    let mut seen: Vec<u32> = sched.rows().to_vec();
    seen.sort_unstable();
    assert_eq!(seen, (0..97).collect::<Vec<u32>>());
    let b: Vec<f64> = (0..97).map(|i| (i % 11) as f64 - 5.0).collect();
    let rep = solve_simulated(&cfg, &diag, &b, Algorithm::Scheduled).unwrap();
    let x_ref = capellini_sptrsv::core::solve_serial_csr(&diag, &b);
    for (x, r) in rep.x.iter().zip(&x_ref) {
        assert_eq!(x.to_bits(), r.to_bits());
    }
}

#[test]
fn empty_system_zero_warp_kernel_launch_is_accounted() {
    // The naive kernel is not in `all_live`; drive it directly to cover the
    // zero-warp grid path of the raw launch API too.
    let l = LowerTriangularCsr::try_new(
        capellini_sptrsv::sparse::CsrMatrix::new(0, 0, vec![0], vec![], vec![]).unwrap(),
    )
    .unwrap();
    let cfg = scaled(DeviceConfig::pascal_like());
    let mut dev = capellini_sptrsv::simt::GpuDevice::new(cfg.clone());
    let sol = naive::solve(&mut dev, &l, &[]).expect("zero-warp launch must succeed");
    assert!(sol.x.is_empty());
    assert_eq!(sol.stats.warps_launched, 0);
    assert!(sol.stats.launches >= 1, "launch overhead still accounted");
    assert_eq!(sol.stats.cycles % cfg.launch_overhead_cycles, 0);
}

#[test]
fn every_solve_entry_point_validates_rhs_length_identically() {
    // Validation parity (the PR-7 bugfix sweep): the cold free functions,
    // the `Solver` wrappers, and the cached session must all reject a
    // wrong-length right-hand side with the same recoverable Launch error —
    // no panics, no silent misreads.
    use capellini_sptrsv::core::{solve_multi_simulated, Solver, SolverSession};
    let l = gen::powerlaw(64, 2.6, 7);
    let n = l.n();
    let cfg = scaled(DeviceConfig::pascal_like());
    let bad = vec![1.0; n - 3];

    let assert_launch = |r: Result<(), SimtError>, what: &str| {
        let err = r.expect_err(&format!("{what} must reject a short rhs"));
        assert!(
            matches!(err, SimtError::Launch(_)),
            "{what}: expected Launch, got {err}"
        );
        assert!(
            err.to_string().contains(&(n - 3).to_string()),
            "{what}: message should name the bad length: {err}"
        );
    };

    for algo in Algorithm::all_live() {
        assert_launch(
            solve_simulated(&cfg, &l, &bad, algo).map(|_| ()),
            algo.label(),
        );
    }
    let solver = Solver::new(l.clone());
    assert_launch(solver.solve_simulated(&cfg, &bad).map(|_| ()), "Solver");
    assert_launch(
        solver.solve_multi_simulated(&cfg, &bad, 1).map(|_| ()),
        "Solver::solve_multi",
    );
    let mut session = SolverSession::new(&cfg, l.clone());
    assert_launch(session.solve(&bad).map(|_| ()), "SolverSession");

    // The overflow guard is part of the same parity sweep: absurd nrhs is a
    // structured error on both multi entry points, never an overflow panic.
    let assert_overflow = |r: Result<(), SimtError>, what: &str| {
        let err = r.expect_err(&format!("{what} must reject an absurd nrhs"));
        assert!(
            matches!(err, SimtError::Launch(_)),
            "{what}: expected Launch, got {err}"
        );
        assert!(
            err.to_string().contains("overflows"),
            "{what}: message should name the overflow: {err}"
        );
    };
    for nrhs in [usize::MAX, usize::MAX / 2] {
        assert_overflow(
            solve_multi_simulated(&cfg, &l, &bad, nrhs, Algorithm::SyncFree).map(|_| ()),
            "solve_multi_simulated overflow",
        );
        assert_overflow(
            session.solve_multi(&bad, nrhs).map(|_| ()),
            "SolverSession::solve_multi overflow",
        );
    }
}

#[test]
fn zero_rhs_batch_is_an_empty_success_on_every_live_algorithm() {
    // nrhs == 0 with an empty block is a degenerate but well-formed batch:
    // every live algorithm returns an empty solution with default stats and
    // zero derived metrics, launching nothing. A *non-empty* block with
    // nrhs == 0 is still a shape error — the bugfix must not swallow it.
    use capellini_sptrsv::core::solve_multi_simulated;
    use capellini_sptrsv::simt::LaunchStats;
    let l = gen::powerlaw(64, 2.6, 7);
    let cfg = scaled(DeviceConfig::pascal_like());
    for algo in Algorithm::all_live() {
        let rep = solve_multi_simulated(&cfg, &l, &[], 0, algo)
            .unwrap_or_else(|e| panic!("{}: nrhs == 0 must succeed: {e}", algo.label()));
        assert!(rep.x.is_empty(), "{}: phantom solution", algo.label());
        assert_eq!(rep.nrhs, 0, "{}", algo.label());
        assert_eq!(
            format!("{:?}", rep.stats),
            format!("{:?}", LaunchStats::default()),
            "{}: empty batch must not launch",
            algo.label()
        );
        for v in [rep.exec_ms, rep.gflops, rep.bandwidth_gbs] {
            assert_eq!(v, 0.0, "{}: nonzero derived metric", algo.label());
        }
        let err = solve_multi_simulated(&cfg, &l, &[1.0; 64], 0, algo)
            .map(|_| ())
            .expect_err("a non-empty block with nrhs == 0 is a shape error");
        assert!(
            matches!(err, SimtError::Launch(_)),
            "{}: expected Launch, got {err}",
            algo.label()
        );
    }
}
