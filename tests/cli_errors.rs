//! The `sptrsv` binary must fail *readably*: malformed input exits nonzero
//! with a diagnostic on stderr, never a panic backtrace. These tests drive
//! the real binary via `CARGO_BIN_EXE_sptrsv`.

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Output};

fn sptrsv(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_sptrsv"))
        .args(args)
        .output()
        .expect("binary runs")
}

/// A scratch file under the target-specific temp dir, unique per test.
fn scratch(name: &str, contents: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("sptrsv-cli-errors-{}-{name}", std::process::id()));
    fs::write(&p, contents).expect("can write scratch file");
    p
}

/// Asserts the command failed with a human diagnostic, not a panic.
#[track_caller]
fn assert_readable_failure(out: &Output, needle: &str) {
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !out.status.success(),
        "expected nonzero exit, got success; stderr: {stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "stderr shows a panic instead of a diagnostic: {stderr}"
    );
    assert!(
        !stderr.contains("RUST_BACKTRACE"),
        "stderr shows a backtrace hint: {stderr}"
    );
    assert!(
        stderr.to_lowercase().contains(&needle.to_lowercase()),
        "stderr should mention {needle:?}: {stderr}"
    );
}

const VALID_LOWER_3X3: &str = "%%MatrixMarket matrix coordinate real general\n\
3 3 4\n1 1 2.0\n2 2 2.0\n3 1 1.0\n3 3 2.0\n";

#[test]
fn missing_matrix_file_is_an_error() {
    let out = sptrsv(&["solve", "--matrix", "/nonexistent/definitely-missing.mtx"]);
    assert_readable_failure(&out, "cannot open");
}

#[test]
fn malformed_matrix_market_is_an_error() {
    let p = scratch("garbage.mtx", "this is not a matrix market file\n1 2\n");
    let out = sptrsv(&["solve", "--matrix", p.to_str().unwrap()]);
    assert_readable_failure(&out, "cannot parse");
    let _ = fs::remove_file(p);
}

#[test]
fn truncated_entry_is_an_error() {
    let p = scratch(
        "truncated.mtx",
        "%%MatrixMarket matrix coordinate real general\n3 3 2\n1 1 2.0\n2\n",
    );
    let out = sptrsv(&["solve", "--matrix", p.to_str().unwrap()]);
    assert_readable_failure(&out, "cannot parse");
    let _ = fs::remove_file(p);
}

#[test]
fn non_square_matrix_is_an_error() {
    let p = scratch(
        "nonsquare.mtx",
        "%%MatrixMarket matrix coordinate real general\n3 4 2\n1 1 2.0\n2 2 2.0\n",
    );
    let out = sptrsv(&["solve", "--matrix", p.to_str().unwrap()]);
    assert_readable_failure(&out, "square");
    let _ = fs::remove_file(p);
}

#[test]
fn rhs_length_mismatch_is_an_error_not_a_panic() {
    let m = scratch("good.mtx", VALID_LOWER_3X3);
    let b = scratch("short-rhs.txt", "1.0 2.0\n");
    let out = sptrsv(&[
        "solve",
        "--matrix",
        m.to_str().unwrap(),
        "--rhs",
        b.to_str().unwrap(),
    ]);
    assert_readable_failure(&out, "matrix needs 3");
    let _ = fs::remove_file(m);
    let _ = fs::remove_file(b);
}

#[test]
fn unparsable_rhs_value_is_an_error() {
    let m = scratch("good2.mtx", VALID_LOWER_3X3);
    let b = scratch("bad-rhs.txt", "1.0 two 3.0\n");
    let out = sptrsv(&[
        "solve",
        "--matrix",
        m.to_str().unwrap(),
        "--rhs",
        b.to_str().unwrap(),
    ]);
    assert_readable_failure(&out, "bad rhs value");
    let _ = fs::remove_file(m);
    let _ = fs::remove_file(b);
}

#[test]
fn bad_batching_flags_are_usage_errors() {
    let m = scratch("good3.mtx", VALID_LOWER_3X3);
    for (flag, bad) in [
        ("--rhs-cols", "0"),
        ("--rhs-cols", "three"),
        ("--session", "0"),
        ("--session", "-2"),
        ("--engine-threads", "0"),
        ("--engine-threads", "lots"),
        ("--profile-interval", "0"),
        ("--profile-interval", "often"),
    ] {
        let out = sptrsv(&["solve", "--matrix", m.to_str().unwrap(), flag, bad]);
        assert_readable_failure(&out, "positive integer");
        assert_eq!(out.status.code(), Some(2), "{flag} {bad} is a usage error");
    }
    let _ = fs::remove_file(m);
}

/// An unknown `--algo` stays a readable exit-2 usage error even now that
/// the roster includes the scheduled kernel.
#[test]
fn unknown_algo_is_a_usage_error() {
    let m = scratch("good-algo.mtx", VALID_LOWER_3X3);
    let out = sptrsv(&[
        "solve",
        "--matrix",
        m.to_str().unwrap(),
        "--algo",
        "schedulde",
    ]);
    assert_readable_failure(&out, "unknown algorithm");
    assert_eq!(out.status.code(), Some(2));
    let _ = fs::remove_file(m);
}

/// `--algo scheduled` runs the coarsened-unit kernel end to end.
#[test]
fn scheduled_algo_solves_from_the_cli() {
    let m = scratch("good-sched.mtx", VALID_LOWER_3X3);
    let out = sptrsv(&[
        "solve",
        "--matrix",
        m.to_str().unwrap(),
        "--algo",
        "scheduled",
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "expected success, stderr: {stderr}");
    assert!(stderr.contains("Scheduled"), "stderr: {stderr}");
    let _ = fs::remove_file(m);
}

/// `--list-algos` prints one trait row per live algorithm on stdout.
#[test]
fn list_algos_prints_every_live_algorithm() {
    let out = sptrsv(&["--list-algos"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "stdout: {stdout}");
    for needle in [
        "algorithm",
        "Level-Set",
        "SyncFree",
        "cuSPARSE",
        "Capellini",
        "Hybrid",
        "Scheduled",
        "warp per unit",
    ] {
        assert!(stdout.contains(needle), "missing {needle:?}: {stdout}");
    }
}

#[test]
fn bad_serve_flags_are_usage_errors() {
    let m = scratch("good-serve.mtx", VALID_LOWER_3X3);
    for (flag, bad, needle) in [
        ("--clients", "0", "positive integer"),
        ("--clients", "many", "positive integer"),
        ("--requests", "0", "positive integer"),
        ("--max-batch", "0", "positive integer"),
        ("--window", "soon", "milliseconds"),
    ] {
        let out = sptrsv(&["serve", "--matrix", m.to_str().unwrap(), flag, bad]);
        assert_readable_failure(&out, needle);
        assert_eq!(out.status.code(), Some(2), "{flag} {bad} is a usage error");
    }
    let out = sptrsv(&[
        "serve",
        "--matrix",
        m.to_str().unwrap(),
        "--device",
        "kepler",
    ]);
    assert_readable_failure(&out, "unknown device");
    let _ = fs::remove_file(m);
}

#[test]
fn serve_demo_reports_per_tenant_metrics() {
    let m = scratch("good-serve2.mtx", VALID_LOWER_3X3);
    let out = sptrsv(&[
        "serve",
        "--matrix",
        m.to_str().unwrap(),
        "--clients",
        "2",
        "--requests",
        "3",
        "--window",
        "0",
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "expected success, stderr: {stderr}");
    assert!(stderr.contains("served 6 solve(s)"), "stderr: {stderr}");
    assert!(stdout.contains("client-0"), "stdout: {stdout}");
    assert!(stdout.contains("client-1"), "stdout: {stdout}");
    let _ = fs::remove_file(m);
}

/// `--cache` arms the finite L1/L2 model and reports hit rates; without it
/// no cache line is printed (the model defaults to off).
#[test]
fn cache_flag_reports_hit_rates() {
    let m = scratch("good-cache.mtx", VALID_LOWER_3X3);
    let out = sptrsv(&["solve", "--matrix", m.to_str().unwrap(), "--cache"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "expected success, stderr: {stderr}");
    assert!(stderr.contains("cache: L1"), "stderr: {stderr}");
    let out = sptrsv(&["solve", "--matrix", m.to_str().unwrap()]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "expected success, stderr: {stderr}");
    assert!(!stderr.contains("cache: L1"), "stderr: {stderr}");
    let _ = fs::remove_file(m);
}

/// `--devices 0` and a count beyond the interconnect budget are readable
/// exit-2 usage errors, not panics or silent clamps.
#[test]
fn bad_device_counts_are_usage_errors() {
    let m = scratch("good-devices.mtx", VALID_LOWER_3X3);
    for bad in ["0", "9", "several"] {
        let out = sptrsv(&["solve", "--matrix", m.to_str().unwrap(), "--devices", bad]);
        assert_readable_failure(&out, "between 1 and 8");
        assert_eq!(
            out.status.code(),
            Some(2),
            "--devices {bad} is a usage error"
        );
    }
    let out = sptrsv(&[
        "solve",
        "--matrix",
        m.to_str().unwrap(),
        "--devices",
        "2",
        "--link",
        "carrier-pigeon",
    ]);
    assert_readable_failure(&out, "unknown link");
    assert_eq!(out.status.code(), Some(2));
    let out = sptrsv(&[
        "solve",
        "--matrix",
        m.to_str().unwrap(),
        "--devices",
        "2",
        "--cpu",
    ]);
    assert_readable_failure(&out, "drop --cpu");
    assert_eq!(out.status.code(), Some(2));
    let _ = fs::remove_file(m);
}

/// `--devices 1` runs the sharded path end to end and reports the link
/// summary; the degenerate single shard moves zero boundary messages.
#[test]
fn single_device_shard_solves_from_the_cli() {
    let m = scratch("good-shard.mtx", VALID_LOWER_3X3);
    let out = sptrsv(&["solve", "--matrix", m.to_str().unwrap(), "--devices", "1"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "expected success, stderr: {stderr}");
    assert!(stderr.contains("sharded across 1"), "stderr: {stderr}");
    assert!(stderr.contains("0 boundary message(s)"), "stderr: {stderr}");
    let _ = fs::remove_file(m);
}

#[test]
fn valid_input_still_succeeds() {
    let m = scratch("good4.mtx", VALID_LOWER_3X3);
    let out = sptrsv(&[
        "solve",
        "--matrix",
        m.to_str().unwrap(),
        "--rhs-cols",
        "2",
        "--session",
        "3",
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "expected success, stderr: {stderr}");
    assert!(stderr.contains("analyzed once"), "stderr: {stderr}");
    let _ = fs::remove_file(m);
}
