//! Dataset health: the evaluation suite and named stand-ins must keep the
//! statistical shape the experiments rely on (these tests guard the
//! generators against regressions that would silently invalidate
//! EXPERIMENTS.md).

use capellini_sptrsv::prelude::*;
use capellini_sptrsv::sparse::dataset;

#[test]
fn suite_counts_and_families() {
    let s = dataset::suite(Scale::Small);
    assert_eq!(s.len(), 245, "the paper evaluates 245 matrices");
    let family = |prefix: &str| s.iter().filter(|e| e.name.starts_with(prefix)).count();
    // §5.2 domain shares: 42% graphs, 13.9% circuits, 11% combinatorial,
    // 9.4% LP, 8.6% optimization.
    assert_eq!(family("graph"), 103);
    assert_eq!(family("circuit"), 34);
    assert_eq!(family("combinatorial"), 27);
    assert_eq!(family("lp"), 23);
    assert_eq!(family("optimization"), 21);
    assert_eq!(family("other"), 37);
}

#[test]
fn table6_standins_match_published_statistics() {
    // Published: rajat29 (α 4.89, β 14636), bayer01 (α 3.39, β 9622),
    // circuit5M_dc (α 3.02, β 12812). Ours match α within ~0.5 and β within
    // ~35% at full scale.
    let checks = [
        (dataset::rajat29_like(Scale::Full), 4.89, 14636.0),
        (dataset::bayer01_like(Scale::Full), 3.39, 9622.0),
        (dataset::circuit5m_dc_like(Scale::Full), 3.02, 12812.0),
    ];
    for (entry, alpha, beta) in checks {
        let (_, s) = entry.build_with_stats();
        assert!(
            (s.nnz_row - alpha).abs() < 0.6,
            "{}: nnz_row {} vs published {alpha}",
            entry.name,
            s.nnz_row
        );
        assert!(
            (s.n_level / beta - 1.0).abs() < 0.35,
            "{}: n_level {} vs published {beta}",
            entry.name,
            s.n_level
        );
        assert!(
            s.granularity > 0.7,
            "{}: granularity {}",
            entry.name,
            s.granularity
        );
    }
}

#[test]
fn lp1_standin_sits_at_the_granularity_extreme() {
    let (_, s) = dataset::lp1_like(Scale::Full).build_with_stats();
    assert!(
        s.granularity > 1.1,
        "lp1 published δ = 1.18, got {}",
        s.granularity
    );
    assert_eq!(s.n_levels, 2);
}

#[test]
fn cant_standin_is_the_warp_level_regime() {
    let (_, s) = dataset::cant_like(Scale::Full).build_with_stats();
    assert!(s.nnz_row > 25.0);
    assert!(s.granularity < 0.0);
}

#[test]
fn full_suite_matrices_have_healthy_structure() {
    for e in dataset::suite(Scale::Small) {
        let (m, s) = e.build_with_stats();
        assert!(m.is_unit_diagonal(), "{}", e.name);
        assert!(s.nnz >= s.n, "{}", e.name);
        assert!(s.n >= 64, "{}", e.name);
    }
}

#[test]
fn full_scale_suite_meets_the_granularity_gate() {
    // The paper's gate: granularity > 0.7. Statistics (not simulation), so
    // full scale is affordable; a small minority of borderline graph
    // instances may fall just under.
    let s = dataset::suite(Scale::Full);
    let high = s
        .iter()
        .filter(|e| e.build_with_stats().1.granularity > 0.7)
        .count();
    assert!(
        high * 100 >= s.len() * 90,
        "only {high}/{} full-scale entries exceed granularity 0.7",
        s.len()
    );
}

#[test]
fn scales_shrink_sizes_monotonically() {
    let f = dataset::wiki_talk_like(Scale::Full).build().n();
    let m = dataset::wiki_talk_like(Scale::Medium).build().n();
    let s = dataset::wiki_talk_like(Scale::Small).build().n();
    assert!(f > m && m > s);
}
