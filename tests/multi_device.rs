//! Differential suite for sharded multi-device SpTRSV (DESIGN.md §15):
//! splitting a solve across simulated devices joined by a modeled
//! interconnect must be *numerically invisible* for every CSR-ordered
//! kernel — the sharded solution is bit-for-bit the single-device one under
//! every memory model × spin model × engine clustering combination, because
//! each row still accumulates its partial sums in CSR column order and the
//! link only changes *when* a dependency becomes visible, never *what*.
//! The one exception is the CSC kernel, whose scatter-side atomics commit
//! in link-arrival order rather than column order; there the suite pins a
//! 1e-10 agreement instead.

use capellini_sptrsv::core::{solve_sharded, solve_simulated, Algorithm, ShardConfig};
use capellini_sptrsv::prelude::*;
use capellini_sptrsv::simt::{SimtError, MAX_DEVICES};
use capellini_sptrsv::sparse::{gen, paper_example};

const DEVICE_COUNTS: [usize; 2] = [2, 3];

fn base_cfg() -> DeviceConfig {
    DeviceConfig::pascal_like().scaled_down(4)
}

/// Matrices whose dependency structure crosses any contiguous row cut: a
/// serial chain (every boundary row imports), a random DAG, a banded
/// matrix (bursts of boundary traffic), and the paper's 8×8 example.
fn matrices() -> Vec<(&'static str, LowerTriangularCsr)> {
    vec![
        ("paper8", paper_example()),
        ("chain192", gen::chain(192, 1, 3)),
        ("randomk", gen::random_k(400, 4, 200, 11)),
        ("banded", gen::banded(300, 5, 0.6, 7)),
    ]
}

fn rhs(l: &LowerTriangularCsr) -> Vec<f64> {
    let x_true: Vec<f64> = (0..l.n()).map(|i| (i % 13) as f64 - 6.0).collect();
    linalg::rhs_for_solution(l, &x_true)
}

/// Compares a sharded solve against the single-device oracle for one
/// (algorithm, matrix, config) cell at every device count. CSR-ordered
/// kernels must match bit-for-bit; the CSC kernel to 1e-10.
fn diff_one(algo: Algorithm, mname: &str, l: &LowerTriangularCsr, cfg: &DeviceConfig) {
    let b = rhs(l);
    let oracle = solve_simulated(cfg, l, &b, algo)
        .unwrap_or_else(|e| panic!("{} unsharded on {mname}: {e}", algo.label()));
    for nd in DEVICE_COUNTS {
        let report = solve_sharded(cfg, l, &b, algo, &ShardConfig::pcie(nd))
            .unwrap_or_else(|e| panic!("{} sharded x{nd} on {mname}: {e}", algo.label()));
        assert_eq!(report.partition.devices(), nd);
        if algo == Algorithm::SyncFreeCsc {
            linalg::assert_solutions_close(&report.x, &oracle.x, 1e-10);
        } else {
            for (i, (s, o)) in report.x.iter().zip(&oracle.x).enumerate() {
                assert_eq!(
                    s.to_bits(),
                    o.to_bits(),
                    "{} x{nd} on {mname}: x[{i}] diverged ({s} vs {o})",
                    algo.label()
                );
            }
        }
    }
}

fn diff_all(cfg: &DeviceConfig) {
    for (mname, l) in &matrices() {
        for algo in Algorithm::all_live() {
            diff_one(algo, mname, l, cfg);
        }
    }
}

#[test]
fn sharded_bit_exact_sc_replay() {
    diff_all(&base_cfg().with_spin_model(SpinModel::Replay));
}

#[test]
fn sharded_bit_exact_sc_fastforward() {
    diff_all(&base_cfg().with_spin_model(SpinModel::FastForward));
}

#[test]
fn sharded_bit_exact_relaxed_replay() {
    diff_all(
        &base_cfg()
            .with_memory_model(MemoryModel::relaxed(2_000))
            .with_spin_model(SpinModel::Replay),
    );
}

#[test]
fn sharded_bit_exact_relaxed_fastforward() {
    diff_all(
        &base_cfg()
            .with_memory_model(MemoryModel::relaxed(2_000))
            .with_spin_model(SpinModel::FastForward),
    );
}

#[test]
fn sharded_bit_exact_racecheck() {
    diff_all(
        &base_cfg()
            .with_memory_model(MemoryModel::racecheck(2_000))
            .with_spin_model(SpinModel::FastForward),
    );
}

#[test]
fn sharded_bit_exact_clustered_engine() {
    diff_all(&base_cfg().with_engine_threads(4));
}

/// A shard holding exactly one row (the warp-aligned tail cut) still
/// solves and matches: n = 2·32 + 1 at three devices puts a single row on
/// the last shard.
#[test]
fn one_row_tail_shard_matches() {
    let cfg = base_cfg();
    let l = gen::random_k(65, 3, 65, 5);
    let b = rhs(&l);
    let report = solve_sharded(
        &cfg,
        &l,
        &b,
        Algorithm::CapelliniWritingFirst,
        &ShardConfig::pcie(3),
    )
    .expect("one-row shard solves");
    let (r0, r1) = report.partition.range(2);
    assert_eq!(r1 - r0, 1, "expected a one-row tail shard, got {r0}..{r1}");
    let oracle = solve_simulated(&cfg, &l, &b, Algorithm::CapelliniWritingFirst).unwrap();
    for (s, o) in report.x.iter().zip(&oracle.x) {
        assert_eq!(s.to_bits(), o.to_bits());
    }
}

/// More devices than rows: the surplus shards own zero rows, launch
/// nothing, and the answer is untouched.
#[test]
fn zero_row_shards_when_n_below_device_count() {
    let cfg = base_cfg();
    let l = gen::chain(3, 1, 9);
    let b = rhs(&l);
    for algo in [Algorithm::CapelliniWritingFirst, Algorithm::Scheduled] {
        let report = solve_sharded(&cfg, &l, &b, algo, &ShardConfig::pcie(MAX_DEVICES))
            .unwrap_or_else(|e| panic!("{}: {e}", algo.label()));
        let empty = (0..MAX_DEVICES)
            .filter(|&d| {
                let (r0, r1) = report.partition.range(d);
                r0 == r1
            })
            .count();
        assert!(empty >= MAX_DEVICES - 3, "expected surplus empty shards");
        let oracle = solve_simulated(&cfg, &l, &b, algo).unwrap();
        for (s, o) in report.x.iter().zip(&oracle.x) {
            assert_eq!(s.to_bits(), o.to_bits());
        }
    }
}

/// A diagonal matrix has no cross-row dependencies at all: every boundary
/// row is diagonal-only, so the links carry nothing.
#[test]
fn diagonal_only_boundaries_move_no_messages() {
    let cfg = base_cfg();
    let l = gen::diagonal(128);
    let b = rhs(&l);
    let report = solve_sharded(
        &cfg,
        &l,
        &b,
        Algorithm::CapelliniWritingFirst,
        &ShardConfig::nvlink(4),
    )
    .expect("diagonal solves");
    assert_eq!(report.link_messages, 0);
    assert_eq!(report.link_bytes, 0);
    let oracle = solve_simulated(&cfg, &l, &b, Algorithm::CapelliniWritingFirst).unwrap();
    for (s, o) in report.x.iter().zip(&oracle.x) {
        assert_eq!(s.to_bits(), o.to_bits());
    }
}

/// One device is the degenerate shard: no links, and every live algorithm
/// reproduces its unsharded bits exactly.
#[test]
fn single_device_shard_is_bit_equal() {
    let cfg = base_cfg();
    let l = gen::random_k(300, 4, 150, 23);
    let b = rhs(&l);
    for algo in Algorithm::all_live() {
        let report = solve_sharded(&cfg, &l, &b, algo, &ShardConfig::pcie(1))
            .unwrap_or_else(|e| panic!("{}: {e}", algo.label()));
        assert_eq!(report.link_messages, 0, "{}", algo.label());
        let oracle = solve_simulated(&cfg, &l, &b, algo).unwrap();
        for (s, o) in report.x.iter().zip(&oracle.x) {
            assert_eq!(s.to_bits(), o.to_bits(), "{}", algo.label());
        }
    }
}

/// A multi-shard failure surfaces as ONE structured deadlock whose waiter
/// graph spans devices: the naive §3.3 straw man starves on the chain's
/// intra-warp dependencies on shard 0, which in turn starves the
/// downstream shards of their boundary imports. Every stuck device
/// contributes device-tagged warp snapshots to the merged error.
#[test]
fn cross_device_stall_merges_into_one_tagged_deadlock() {
    let mut cfg = base_cfg();
    cfg.deadlock_window = 300_000;
    let l = gen::chain(256, 1, 1);
    let b = rhs(&l);
    let err = solve_sharded(&cfg, &l, &b, Algorithm::NaiveThread, &ShardConfig::pcie(3))
        .expect_err("the straw man deadlocks");
    let SimtError::Deadlock {
        live_warps, warps, ..
    } = &err
    else {
        panic!("expected one merged deadlock, got {err:?}");
    };
    assert!(*live_warps > 0);
    let mut seen: Vec<usize> = warps.iter().map(|w| w.device).collect();
    seen.sort_unstable();
    seen.dedup();
    assert!(
        seen.len() >= 2,
        "waiter graph should span devices, saw only {seen:?}"
    );
    let rendered = err.to_string();
    assert!(
        rendered.contains("device 1") || rendered.contains("device 2"),
        "rendered deadlock should tag non-zero devices: {rendered}"
    );
}

/// Sharding rejects non-physical device counts with a structured config
/// error rather than panicking.
#[test]
fn invalid_device_counts_are_config_errors() {
    let cfg = base_cfg();
    let l = gen::diagonal(16);
    let b = rhs(&l);
    for bad in [0, MAX_DEVICES + 1] {
        let err = solve_sharded(
            &cfg,
            &l,
            &b,
            Algorithm::CapelliniWritingFirst,
            &ShardConfig::pcie(bad),
        )
        .expect_err("non-physical device count");
        assert!(matches!(err, SimtError::Config(_)), "got {err:?}");
    }
}
