//! Cross-crate integration: every solver in the library — six simulated-GPU
//! algorithms, three CPU solvers, two serial references — produces the same
//! solution on matrices from every structural family, on every platform.

use capellini_sptrsv::core::prelude::*;
use capellini_sptrsv::core::Algorithm;
use capellini_sptrsv::prelude::*;

fn matrices() -> Vec<(&'static str, LowerTriangularCsr)> {
    vec![
        ("paper", capellini_sptrsv::sparse::paper_example()),
        ("graph", gen::powerlaw(1_200, 3.0, 21)),
        ("lp", gen::ultra_sparse_wide(1_000, 8, 2, 22)),
        ("circuit", gen::circuit_like(1_000, 4, 128, 23)),
        ("stencil", gen::stencil3d(9, 9, 9, 24)),
        ("band", gen::dense_band(400, 24, 25)),
        ("chain", gen::chain(300, 1, 26)),
        ("layered", gen::layered(900, 3, 4, 27)),
        ("diagonal", gen::diagonal(500)),
    ]
}

fn problem(l: &LowerTriangularCsr) -> (Vec<f64>, Vec<f64>) {
    let x_true: Vec<f64> = (0..l.n())
        .map(|i| ((i * 7 + 3) % 17) as f64 - 8.0)
        .collect();
    let b = linalg::rhs_for_solution(l, &x_true);
    (b, x_true)
}

#[test]
fn all_simulated_algorithms_agree_on_all_families() {
    let cfg = DeviceConfig::pascal_like().scaled_down(4);
    for (name, l) in matrices() {
        let (b, _) = problem(&l);
        let x_ref = solve_serial_csr(&l, &b);
        for algo in Algorithm::all_live() {
            let rep = solve_simulated(&cfg, &l, &b, algo)
                .unwrap_or_else(|e| panic!("{name}/{}: {e}", algo.label()));
            linalg::assert_solutions_close(&rep.x, &x_ref, 1e-10);
        }
    }
}

#[test]
fn all_platforms_give_identical_numerics() {
    // Timing differs across platforms; the arithmetic must not.
    let l = gen::powerlaw(2_000, 3.0, 31);
    let (b, _) = problem(&l);
    let mut solutions = Vec::new();
    for cfg in DeviceConfig::evaluation_platforms_scaled() {
        let rep = solve_simulated(&cfg, &l, &b, Algorithm::CapelliniWritingFirst).unwrap();
        solutions.push(rep.x);
    }
    assert_eq!(solutions[0], solutions[1]);
    assert_eq!(solutions[1], solutions[2]);
}

#[test]
fn cpu_solvers_agree_with_gpu_simulation() {
    let cfg = DeviceConfig::turing_like().scaled_down(4);
    for (name, l) in matrices() {
        let (b, _) = problem(&l);
        let gpu = solve_simulated(&cfg, &l, &b, Algorithm::CapelliniWritingFirst)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let levels = LevelSets::analyze(&l);
        for x_cpu in [
            solve_selfsched(&l, &b, 4, Distribution::Cyclic),
            solve_selfsched(&l, &b, 3, Distribution::Blocked),
            solve_levelset_parallel(&l, &levels, &b, 4),
            solve_serial_csc(&l.csr().to_csc(), &b),
        ] {
            linalg::assert_solutions_close(&x_cpu, &gpu.x, 1e-10);
        }
    }
}

#[test]
fn solutions_recover_the_exact_answer_on_unit_lower_systems() {
    // Generator value scaling keeps the systems perfectly conditioned, so
    // solvers must recover x_true to ~1e-12.
    let cfg = DeviceConfig::volta_like().scaled_down(4);
    for (name, l) in matrices() {
        let (b, x_true) = problem(&l);
        let rep = solve_simulated(&cfg, &l, &b, Algorithm::CapelliniWritingFirst)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let err = rep
            .x
            .iter()
            .zip(&x_true)
            .map(|(a, e)| (a - e).abs())
            .fold(0.0f64, f64::max);
        assert!(err < 1e-9, "{name}: max abs error {err:.3e}");
    }
}

#[test]
fn multiple_rhs_reuse_the_same_matrix() {
    let l = gen::circuit_like(2_000, 4, 256, 41);
    let solver = Solver::new(l);
    let cfg = DeviceConfig::pascal_like().scaled_down(4);
    for seed in 0..4 {
        let b: Vec<f64> = (0..solver.matrix().n())
            .map(|i| ((i + seed * 97) % 23) as f64 - 11.0)
            .collect();
        let rep = solver.solve_simulated(&cfg, &b).unwrap();
        let x_ref = solver.solve_serial(&b);
        linalg::assert_solutions_close(&rep.x, &x_ref, 1e-10);
    }
}
