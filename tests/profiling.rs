//! Integration tests of the profiling subsystem: arming the sampling
//! profiler must never perturb simulation results (the timeline is an
//! observer, not a participant), and the Chrome-trace export must be valid
//! JSON with the documented event schema.

use capellini_sptrsv::core::kernels::{cusparse_like, syncfree, writing_first, SimSolve};
use capellini_sptrsv::prelude::*;
use capellini_sptrsv::simt::trace::chrome;
use capellini_sptrsv::simt::{GpuDevice, SimtError, StallReason};
use capellini_sptrsv::sparse::paper_example;

type SolveFn = fn(&mut GpuDevice, &LowerTriangularCsr, &[f64]) -> Result<SimSolve, SimtError>;

const KERNELS: [(&str, SolveFn); 3] = [
    ("syncfree", syncfree::solve as SolveFn),
    ("writing_first", writing_first::solve as SolveFn),
    ("cusparse_like", cusparse_like::solve as SolveFn),
];

fn problems() -> Vec<(&'static str, LowerTriangularCsr)> {
    vec![
        ("paper_example", paper_example()),
        ("random_k", gen::random_k(3000, 3, 3000, 42)),
    ]
}

#[test]
fn profiling_does_not_perturb_stats_or_solutions() {
    // The same differential the golden traces rely on: ProfileMode::Sampled
    // must leave every counter and every solution value bit-identical to
    // ProfileMode::Off.
    for (mname, l) in problems() {
        let b: Vec<f64> = (0..l.n()).map(|i| (i % 7) as f64 - 3.0).collect();
        for (kname, solve) in KERNELS {
            let base = DeviceConfig::pascal_like().scaled_down(4);
            let mut dev = GpuDevice::new(base.clone());
            let off = solve(&mut dev, &l, &b).unwrap();
            assert!(dev.take_profiles().is_empty(), "{kname}: profile under Off");

            let mut dev = GpuDevice::new(base.with_profile(ProfileMode::sampled(64)));
            let on = solve(&mut dev, &l, &b).unwrap();
            let profiles = dev.take_profiles();

            assert_eq!(
                format!("{:?}", off.stats),
                format!("{:?}", on.stats),
                "{kname} on {mname}: profiling perturbed the counters"
            );
            assert_eq!(
                off.x, on.x,
                "{kname} on {mname}: profiling perturbed the solution"
            );
            assert!(!profiles.is_empty(), "{kname} on {mname}: no profile");
            let issued: u64 = profiles.iter().map(|p| p.issued_slots).sum();
            assert_eq!(
                issued, on.stats.warp_instructions,
                "{kname} on {mname}: issued slots must equal warp instructions"
            );
            for p in &profiles {
                let cap = p.interval_cycles * p.schedulers_per_sm as u64;
                for bkt in &p.buckets {
                    let total: u64 = bkt.slots.iter().sum();
                    assert!(total <= cap, "bucket exceeds issue-slot capacity");
                }
                let pct: f64 = StallReason::ALL.iter().map(|&r| p.reason_pct(r)).sum();
                assert!(
                    p.total_slots() == 0 || (pct - 100.0).abs() < 1e-6,
                    "{kname} on {mname}: percentages sum to {pct}"
                );
            }
        }
    }
}

#[test]
fn chrome_trace_round_trips_through_a_json_parser() {
    let l = gen::random_k(3000, 3, 3000, 42);
    let b = vec![1.0; l.n()];
    for (kname, solve) in KERNELS {
        let cfg = DeviceConfig::pascal_like()
            .scaled_down(4)
            .with_profile(ProfileMode::sampled(64));
        let mut dev = GpuDevice::new(cfg);
        solve(&mut dev, &l, &b).unwrap();
        let profiles = dev.take_profiles();
        let text = chrome::trace_json(&profiles);
        let doc = json::parse(&text).unwrap_or_else(|e| panic!("{kname}: bad JSON: {e}"));

        let top = doc.as_object().expect("top level is an object");
        let events = top["traceEvents"].as_array().expect("traceEvents array");
        assert!(!events.is_empty(), "{kname}: no trace events");
        let mut counters = 0usize;
        let mut spans = 0usize;
        for ev in events {
            let ev = ev.as_object().expect("event is an object");
            let ph = ev["ph"].as_str().expect("ph is a string");
            match ph {
                "C" => {
                    counters += 1;
                    let args = ev["args"].as_object().expect("counter args");
                    for r in StallReason::ALL {
                        assert!(
                            args.contains_key(r.label()),
                            "{kname}: counter missing {}",
                            r.label()
                        );
                    }
                }
                "X" => {
                    spans += 1;
                    assert!(ev["dur"].as_f64().expect("dur") >= 1.0);
                    assert!(ev["ts"].as_f64().expect("ts") >= 0.0);
                }
                "M" => {
                    assert_eq!(ev["name"].as_str(), Some("process_name"));
                }
                other => panic!("{kname}: unexpected phase {other}"),
            }
        }
        assert!(counters > 0, "{kname}: no counter events");
        assert!(spans > 0, "{kname}: no span events");
        let other = top["otherData"].as_object().expect("otherData");
        assert_eq!(other["ts_unit"].as_str(), Some("cycles"));
        assert_eq!(
            other["launches"].as_f64(),
            Some(profiles.len() as f64),
            "{kname}: launch count mismatch"
        );
    }
}

/// The clustered engine (`with_engine_threads`) must export the *same*
/// Chrome trace as the serial engine — byte-for-byte — and that trace must
/// still round-trip through the parser with each SM's counter track in
/// monotonically non-decreasing timestamp order (interval buckets are
/// emitted in cycle order per SM, clusters or not).
#[test]
fn clustered_chrome_trace_round_trips_and_orders_per_sm_events() {
    let l = gen::random_k(3000, 3, 3000, 42);
    let b = vec![1.0; l.n()];
    for (kname, solve) in KERNELS {
        let run = |threads: usize| {
            let cfg = DeviceConfig::pascal_like()
                .scaled_down(4)
                .with_profile(ProfileMode::sampled(64))
                .with_engine_threads(threads);
            let mut dev = GpuDevice::new(cfg);
            solve(&mut dev, &l, &b).unwrap();
            chrome::trace_json(&dev.take_profiles())
        };
        let serial = run(1);
        for threads in [2, 4, 8] {
            let clustered = run(threads);
            assert_eq!(
                clustered, serial,
                "{kname}: trace JSON diverged at {threads} engine threads"
            );
            let doc = json::parse(&clustered)
                .unwrap_or_else(|e| panic!("{kname} at {threads} threads: bad JSON: {e}"));
            let events = doc["traceEvents"].as_array().expect("traceEvents array");
            // Per-SM counter timestamps must be monotone: collect the "C"
            // track of each pid in document order and check ordering.
            let mut last_ts: std::collections::BTreeMap<String, f64> =
                std::collections::BTreeMap::new();
            let mut counters = 0usize;
            for ev in events {
                if ev["ph"].as_str() != Some("C") {
                    continue;
                }
                counters += 1;
                let sm = format!("{:?}", ev["pid"]);
                let ts = ev["ts"].as_f64().expect("counter ts");
                if let Some(&prev) = last_ts.get(&sm) {
                    assert!(
                        ts >= prev,
                        "{kname} at {threads} threads: SM {sm} counter went backwards \
                         ({prev} -> {ts})"
                    );
                }
                last_ts.insert(sm, ts);
            }
            assert!(counters > 0, "{kname}: no counter events to order-check");
        }
    }
}

#[test]
fn empty_profile_list_is_still_a_valid_document() {
    let doc = json::parse(&chrome::trace_json(&[])).unwrap();
    let top = doc.as_object().unwrap();
    assert!(top["traceEvents"].as_array().unwrap().is_empty());
}

/// A deliberately minimal recursive-descent JSON parser — just enough to
/// validate the Chrome-trace export without adding a serde dependency.
mod json {
    use std::collections::BTreeMap;

    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        Num(f64),
        Str(String),
        Arr(Vec<Value>),
        Obj(BTreeMap<String, Value>),
    }

    impl Value {
        pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
            match self {
                Value::Obj(m) => Some(m),
                _ => None,
            }
        }
        pub fn as_array(&self) -> Option<&Vec<Value>> {
            match self {
                Value::Arr(a) => Some(a),
                _ => None,
            }
        }
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(n) => Some(*n),
                _ => None,
            }
        }
    }

    impl std::ops::Index<&str> for Value {
        type Output = Value;
        fn index(&self, key: &str) -> &Value {
            static NULL: Value = Value::Null;
            self.as_object().and_then(|m| m.get(key)).unwrap_or(&NULL)
        }
    }

    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        if b.get(*pos) == Some(&c) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {pos}", c as char))
        }
    }

    fn value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => object(b, pos),
            Some(b'[') => array(b, pos),
            Some(b'"') => Ok(Value::Str(string(b, pos)?)),
            Some(b't') => literal(b, pos, "true", Value::Bool(true)),
            Some(b'f') => literal(b, pos, "false", Value::Bool(false)),
            Some(b'n') => literal(b, pos, "null", Value::Null),
            Some(_) => number(b, pos),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {pos}"))
        }
    }

    fn number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        }
        std::str::from_utf8(&b[start..*pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(b, pos, b'"')?;
        let mut out = String::new();
        loop {
            match b.get(*pos) {
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = b
                                .get(*pos + 1..*pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                            *pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {pos}")),
                    }
                    *pos += 1;
                }
                Some(&c) => {
                    out.push(c as char);
                    *pos += 1;
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {pos}")),
            }
        }
    }

    fn object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'{')?;
        let mut map = BTreeMap::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            skip_ws(b, pos);
            let key = string(b, pos)?;
            skip_ws(b, pos);
            expect(b, pos, b':')?;
            map.insert(key, value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
            }
        }
    }
}
