//! Golden regression tests: exact cycle/instruction counts of each kernel
//! on the paper's 8×8 example over the deterministic toy device. These pin
//! the simulator's semantics — any change to the divergence stack, the
//! scheduler, or a kernel's control-flow graph shows up as a diff here and
//! must be reviewed against Figure 2's schedule.

use capellini_sptrsv::core::kernels::{levelset, syncfree, syncfree_csc, two_phase, writing_first};
use capellini_sptrsv::prelude::*;
use capellini_sptrsv::simt::GpuDevice;
use capellini_sptrsv::sparse::paper_example;

fn toy() -> DeviceConfig {
    DeviceConfig::toy()
}

fn problem() -> (LowerTriangularCsr, Vec<f64>, Vec<f64>) {
    let l = paper_example();
    let x_true: Vec<f64> = (0..8).map(|i| i as f64 - 3.5).collect();
    let b = linalg::rhs_for_solution(&l, &x_true);
    (l, b, x_true)
}

#[test]
fn writing_first_golden() {
    let (l, b, x_true) = problem();
    let mut dev = GpuDevice::new(toy());
    let out = writing_first::solve(&mut dev, &l, &b).unwrap();
    linalg::assert_solutions_close(&out.x, &x_true, 1e-12);
    // 8 rows over 3-lane warps = 3 warps; the Figure-2c schedule.
    assert_eq!(out.stats.warps_launched, 3);
    assert_eq!(out.stats.cycles, 92, "writing-first cycle count changed");
    assert_eq!(
        out.stats.warp_instructions, 129,
        "writing-first instruction count changed"
    );
}

#[test]
fn syncfree_golden() {
    let (l, b, x_true) = problem();
    let mut dev = GpuDevice::new(toy());
    let out = syncfree::solve(&mut dev, &l, &b).unwrap();
    linalg::assert_solutions_close(&out.x, &x_true, 1e-12);
    // One warp per component: Figure 2b.
    assert_eq!(out.stats.warps_launched, 8);
    assert_eq!(out.stats.cycles, 109, "syncfree cycle count changed");
    assert_eq!(
        out.stats.warp_instructions, 186,
        "syncfree instruction count changed"
    );
}

#[test]
fn two_phase_golden() {
    let (l, b, x_true) = problem();
    let mut dev = GpuDevice::new(toy());
    let out = two_phase::solve(&mut dev, &l, &b).unwrap();
    linalg::assert_solutions_close(&out.x, &x_true, 1e-12);
    let wf_cycles = 92;
    assert!(
        out.stats.cycles >= wf_cycles,
        "two-phase ({}) should not beat writing-first ({wf_cycles}) on the example",
        out.stats.cycles
    );
}

#[test]
fn levelset_golden() {
    let (l, b, x_true) = problem();
    let mut dev = GpuDevice::new(toy());
    let out = levelset::solve(&mut dev, &l, &b).unwrap();
    linalg::assert_solutions_close(&out.x, &x_true, 1e-12);
    // Four launches (one per level, Figure 2a) with per-launch overhead.
    assert_eq!(out.stats.launches, 4);
    assert_eq!(out.stats.cycles, 116, "level-set cycle count changed");
}

#[test]
fn figure2_ordering_holds() {
    // The paper's Figure 2: (a) Level-Set slowest, (b) warp-level SyncFree
    // middle, (c) thread-level Capellini fastest.
    let (l, b, _) = problem();
    let cycles = |f: &dyn Fn(&mut GpuDevice) -> u64| {
        let mut dev = GpuDevice::new(toy());
        f(&mut dev)
    };
    let a = cycles(&|d| levelset::solve(d, &l, &b).unwrap().stats.cycles);
    let bb = cycles(&|d| syncfree::solve(d, &l, &b).unwrap().stats.cycles);
    let c = cycles(&|d| writing_first::solve(d, &l, &b).unwrap().stats.cycles);
    assert!(a > bb, "level-set {a} must exceed syncfree {bb}");
    assert!(bb > c, "syncfree {bb} must exceed capellini {c}");
}

#[test]
fn csc_formulation_solves_the_example() {
    let (l, b, x_true) = problem();
    let mut dev = GpuDevice::new(toy());
    let out = syncfree_csc::solve(&mut dev, &l, &b).unwrap();
    linalg::assert_solutions_close(&out.x, &x_true, 1e-12);
    assert!(
        out.stats.atomic_ops > 0,
        "the scatter form must use atomics"
    );
}

#[test]
fn traces_are_bitwise_reproducible() {
    let (l, b, _) = problem();
    let run = || {
        let mut dev = GpuDevice::new(toy());
        let mut tr = capellini_sptrsv::simt::Trace::new();
        writing_first::solve_traced(&mut dev, &l, &b, &mut tr).unwrap();
        tr.render()
    };
    assert_eq!(run(), run());
}

/// Every counter of every kernel, bit-exact, on two fixtures: the paper's
/// 8×8 example over the toy device and a 3000-row random DAG over a
/// scaled-down Pascal. The engine hot path is optimized under the contract
/// that simulated *results* never change; this test is that contract.
/// (Values captured from the pre-optimization engine.)
#[test]
fn launch_stats_bit_exact() {
    use capellini_sptrsv::core::kernels::cusparse_like;
    use capellini_sptrsv::sparse::gen;

    type Solve =
        fn(
            &mut GpuDevice,
            &LowerTriangularCsr,
            &[f64],
        )
            -> Result<capellini_sptrsv::core::kernels::SimSolve, capellini_sptrsv::simt::SimtError>;
    let kernels: &[(&str, Solve)] = &[
        ("writing_first", writing_first::solve as Solve),
        ("syncfree", syncfree::solve as Solve),
        ("syncfree_csc", syncfree_csc::solve as Solve),
        ("two_phase", two_phase::solve as Solve),
        ("levelset", levelset::solve as Solve),
        ("cusparse_like", cusparse_like::solve as Solve),
    ];

    let expected_paper = [
        "LaunchStats { cycles: 92, warp_instructions: 129, thread_instructions: 214, flops: 34, dram_read_bytes: 480, dram_write_bytes: 96, dram_transactions: 18, l2_hits: 67, shared_ops: 0, atomic_ops: 0, fences: 6, issue_ticks: 129, stall_ticks: 24, failed_polls: 19, warps_launched: 3, lanes_retired: 9, launches: 1, stale_reads: 0, drained_stores: 0, l1_hits: 0, l1_misses: 0, l2_misses: 0, sector_evictions: 0 }",
        "LaunchStats { cycles: 109, warp_instructions: 186, thread_instructions: 399, flops: 50, dram_read_bytes: 448, dram_write_bytes: 96, dram_transactions: 17, l2_hits: 57, shared_ops: 64, atomic_ops: 0, fences: 8, issue_ticks: 186, stall_ticks: 0, failed_polls: 0, warps_launched: 8, lanes_retired: 24, launches: 1, stale_reads: 0, drained_stores: 0, l1_hits: 0, l1_misses: 0, l2_misses: 0, sector_evictions: 0 }",
        "LaunchStats { cycles: 75, warp_instructions: 118, thread_instructions: 229, flops: 34, dram_read_bytes: 448, dram_write_bytes: 160, dram_transactions: 19, l2_hits: 64, shared_ops: 24, atomic_ops: 13, fences: 8, issue_ticks: 118, stall_ticks: 0, failed_polls: 0, warps_launched: 8, lanes_retired: 24, launches: 1, stale_reads: 0, drained_stores: 0, l1_hits: 0, l1_misses: 0, l2_misses: 0, sector_evictions: 0 }",
        "LaunchStats { cycles: 109, warp_instructions: 159, thread_instructions: 327, flops: 34, dram_read_bytes: 480, dram_write_bytes: 96, dram_transactions: 18, l2_hits: 74, shared_ops: 0, atomic_ops: 0, fences: 4, issue_ticks: 159, stall_ticks: 28, failed_polls: 58, warps_launched: 3, lanes_retired: 9, launches: 1, stale_reads: 0, drained_stores: 0, l1_hits: 0, l1_misses: 0, l2_misses: 0, sector_evictions: 0 }",
        "LaunchStats { cycles: 116, warp_instructions: 56, thread_instructions: 104, flops: 34, dram_read_bytes: 448, dram_write_bytes: 64, dram_transactions: 16, l2_hits: 32, shared_ops: 0, atomic_ops: 0, fences: 0, issue_ticks: 56, stall_ticks: 52, failed_polls: 0, warps_launched: 4, lanes_retired: 12, launches: 4, stale_reads: 0, drained_stores: 0, l1_hits: 0, l1_misses: 0, l2_misses: 0, sector_evictions: 0 }",
        "LaunchStats { cycles: 97, warp_instructions: 162, thread_instructions: 327, flops: 82, dram_read_bytes: 480, dram_write_bytes: 96, dram_transactions: 18, l2_hits: 64, shared_ops: 56, atomic_ops: 0, fences: 8, issue_ticks: 162, stall_ticks: 0, failed_polls: 0, warps_launched: 8, lanes_retired: 24, launches: 1, stale_reads: 0, drained_stores: 0, l1_hits: 0, l1_misses: 0, l2_misses: 0, sector_evictions: 0 }",
    ];
    let expected_randomk = [
        "LaunchStats { cycles: 88185, warp_instructions: 86433, thread_instructions: 1861577, flops: 23988, dram_read_bytes: 205088, dram_write_bytes: 27008, dram_transactions: 7253, l2_hits: 429322, shared_ops: 0, atomic_ops: 0, fences: 1009, issue_ticks: 86433, stall_ticks: 1497796, failed_polls: 356721, warps_launched: 94, lanes_retired: 3008, launches: 1, stale_reads: 0, drained_stores: 0, l1_hits: 0, l1_misses: 0, l2_misses: 0, sector_evictions: 0 }",
        "LaunchStats { cycles: 62990, warp_instructions: 271641, thread_instructions: 2445894, flops: 116988, dram_read_bytes: 205056, dram_write_bytes: 27008, dram_transactions: 7252, l2_hits: 190317, shared_ops: 282000, atomic_ops: 0, fences: 3000, issue_ticks: 271641, stall_ticks: 818396, failed_polls: 174468, warps_launched: 3000, lanes_retired: 96000, launches: 1, stale_reads: 0, drained_stores: 0, l1_hits: 0, l1_misses: 0, l2_misses: 0, sector_evictions: 0 }",
        "LaunchStats { cycles: 80765, warp_instructions: 303064, thread_instructions: 8919298, flops: 23988, dram_read_bytes: 215392, dram_write_bytes: 60000, dram_transactions: 8606, l2_hits: 166593, shared_ops: 96000, atomic_ops: 17743, fences: 3000, issue_ticks: 303064, stall_ticks: 1143767, failed_polls: 4141664, warps_launched: 3000, lanes_retired: 96000, launches: 1, stale_reads: 0, drained_stores: 0, l1_hits: 0, l1_misses: 0, l2_misses: 0, sector_evictions: 0 }",
        "LaunchStats { cycles: 230048, warp_instructions: 205608, thread_instructions: 3101676, flops: 23988, dram_read_bytes: 205088, dram_write_bytes: 27008, dram_transactions: 7253, l2_hits: 1007319, shared_ops: 0, atomic_ops: 0, fences: 191, issue_ticks: 205608, stall_ticks: 4189012, failed_polls: 1488737, warps_launched: 94, lanes_retired: 3008, launches: 1, stale_reads: 0, drained_stores: 0, l1_hits: 0, l1_misses: 0, l2_misses: 0, sector_evictions: 0 }",
        "LaunchStats { cycles: 499672, warp_instructions: 2356, thread_instructions: 60784, flops: 23988, dram_read_bytes: 214080, dram_write_bytes: 24000, dram_transactions: 7440, l2_hits: 30705, shared_ops: 0, atomic_ops: 0, fences: 0, issue_ticks: 2356, stall_ticks: 1507792, failed_polls: 0, warps_launched: 119, lanes_retired: 3808, launches: 42, stale_reads: 0, drained_stores: 0, l1_hits: 0, l1_misses: 0, l2_misses: 0, sector_evictions: 0 }",
        "LaunchStats { cycles: 58845, warp_instructions: 295457, thread_instructions: 1688793, flops: 503988, dram_read_bytes: 217056, dram_write_bytes: 27008, dram_transactions: 7627, l2_hits: 173152, shared_ops: 282000, atomic_ops: 0, fences: 3000, issue_ticks: 295457, stall_ticks: 713517, failed_polls: 151945, warps_launched: 3000, lanes_retired: 96000, launches: 1, stale_reads: 0, drained_stores: 0, l1_hits: 0, l1_misses: 0, l2_misses: 0, sector_evictions: 0 }",
    ];

    let fixtures = [
        (paper_example(), DeviceConfig::toy(), &expected_paper),
        (
            gen::random_k(3000, 3, 3000, 42),
            DeviceConfig::pascal_like().scaled_down(4),
            &expected_randomk,
        ),
    ];
    for (l, cfg, expected) in &fixtures {
        let x_true: Vec<f64> = (0..l.n()).map(|i| (i % 17) as f64 - 8.0).collect();
        let b = linalg::rhs_for_solution(l, &x_true);
        for ((name, solve), want) in kernels.iter().zip(expected.iter()) {
            let mut dev = GpuDevice::new(cfg.clone());
            let out = solve(&mut dev, l, &b).unwrap();
            linalg::assert_solutions_close(&out.x, &x_true, 1e-9);
            assert_eq!(
                format!("{:?}", out.stats),
                *want,
                "{name} LaunchStats changed (n={})",
                l.n()
            );
        }
    }
}

#[test]
fn upper_triangular_golden() {
    // Backward substitution rides the same kernels through index reversal
    // (`upper.rs`); pin its schedule on the transposed paper example so the
    // reversal path cannot drift independently of the lower solves.
    use capellini_sptrsv::core::Algorithm;
    use capellini_sptrsv::sparse::UpperTriangularCsr;

    let u = UpperTriangularCsr::transpose_of(&paper_example());
    let x_true: Vec<f64> = (0..8).map(|i| i as f64 - 3.5).collect();
    let b = linalg::spmv(u.csr(), &x_true);

    let expected = [
        (Algorithm::CapelliniWritingFirst, "LaunchStats { cycles: 92, warp_instructions: 129, thread_instructions: 214, flops: 34, dram_read_bytes: 480, dram_write_bytes: 96, dram_transactions: 18, l2_hits: 68, shared_ops: 0, atomic_ops: 0, fences: 6, issue_ticks: 129, stall_ticks: 24, failed_polls: 19, warps_launched: 3, lanes_retired: 9, launches: 1, stale_reads: 0, drained_stores: 0, l1_hits: 0, l1_misses: 0, l2_misses: 0, sector_evictions: 0 }"),
        (Algorithm::SyncFree, "LaunchStats { cycles: 109, warp_instructions: 186, thread_instructions: 399, flops: 50, dram_read_bytes: 448, dram_write_bytes: 96, dram_transactions: 17, l2_hits: 57, shared_ops: 64, atomic_ops: 0, fences: 8, issue_ticks: 186, stall_ticks: 0, failed_polls: 0, warps_launched: 8, lanes_retired: 24, launches: 1, stale_reads: 0, drained_stores: 0, l1_hits: 0, l1_misses: 0, l2_misses: 0, sector_evictions: 0 }"),
        (Algorithm::LevelSet, "LaunchStats { cycles: 116, warp_instructions: 56, thread_instructions: 104, flops: 34, dram_read_bytes: 448, dram_write_bytes: 64, dram_transactions: 16, l2_hits: 34, shared_ops: 0, atomic_ops: 0, fences: 0, issue_ticks: 56, stall_ticks: 52, failed_polls: 0, warps_launched: 4, lanes_retired: 12, launches: 4, stale_reads: 0, drained_stores: 0, l1_hits: 0, l1_misses: 0, l2_misses: 0, sector_evictions: 0 }"),
    ];
    for (algo, want) in expected {
        let rep = solve_upper_simulated(&toy(), &u, &b, algo).unwrap();
        linalg::assert_solutions_close(&rep.x, &x_true, 1e-12);
        assert_eq!(
            format!("{:?}", rep.stats),
            want,
            "{} upper-solve LaunchStats changed",
            algo.label()
        );
    }
}
