//! Golden regression tests: exact cycle/instruction counts of each kernel
//! on the paper's 8×8 example over the deterministic toy device. These pin
//! the simulator's semantics — any change to the divergence stack, the
//! scheduler, or a kernel's control-flow graph shows up as a diff here and
//! must be reviewed against Figure 2's schedule.

use capellini_sptrsv::core::kernels::{
    levelset, syncfree, syncfree_csc, two_phase, writing_first,
};
use capellini_sptrsv::prelude::*;
use capellini_sptrsv::simt::GpuDevice;
use capellini_sptrsv::sparse::paper_example;

fn toy() -> DeviceConfig {
    DeviceConfig::toy()
}

fn problem() -> (LowerTriangularCsr, Vec<f64>, Vec<f64>) {
    let l = paper_example();
    let x_true: Vec<f64> = (0..8).map(|i| i as f64 - 3.5).collect();
    let b = linalg::rhs_for_solution(&l, &x_true);
    (l, b, x_true)
}

#[test]
fn writing_first_golden() {
    let (l, b, x_true) = problem();
    let mut dev = GpuDevice::new(toy());
    let out = writing_first::solve(&mut dev, &l, &b).unwrap();
    linalg::assert_solutions_close(&out.x, &x_true, 1e-12);
    // 8 rows over 3-lane warps = 3 warps; the Figure-2c schedule.
    assert_eq!(out.stats.warps_launched, 3);
    assert_eq!(out.stats.cycles, 92, "writing-first cycle count changed");
    assert_eq!(out.stats.warp_instructions, 129, "writing-first instruction count changed");
}

#[test]
fn syncfree_golden() {
    let (l, b, x_true) = problem();
    let mut dev = GpuDevice::new(toy());
    let out = syncfree::solve(&mut dev, &l, &b).unwrap();
    linalg::assert_solutions_close(&out.x, &x_true, 1e-12);
    // One warp per component: Figure 2b.
    assert_eq!(out.stats.warps_launched, 8);
    assert_eq!(out.stats.cycles, 109, "syncfree cycle count changed");
    assert_eq!(out.stats.warp_instructions, 186, "syncfree instruction count changed");
}

#[test]
fn two_phase_golden() {
    let (l, b, x_true) = problem();
    let mut dev = GpuDevice::new(toy());
    let out = two_phase::solve(&mut dev, &l, &b).unwrap();
    linalg::assert_solutions_close(&out.x, &x_true, 1e-12);
    let wf_cycles = 92;
    assert!(
        out.stats.cycles >= wf_cycles,
        "two-phase ({}) should not beat writing-first ({wf_cycles}) on the example",
        out.stats.cycles
    );
}

#[test]
fn levelset_golden() {
    let (l, b, x_true) = problem();
    let mut dev = GpuDevice::new(toy());
    let out = levelset::solve(&mut dev, &l, &b).unwrap();
    linalg::assert_solutions_close(&out.x, &x_true, 1e-12);
    // Four launches (one per level, Figure 2a) with per-launch overhead.
    assert_eq!(out.stats.launches, 4);
    assert_eq!(out.stats.cycles, 116, "level-set cycle count changed");
}

#[test]
fn figure2_ordering_holds() {
    // The paper's Figure 2: (a) Level-Set slowest, (b) warp-level SyncFree
    // middle, (c) thread-level Capellini fastest.
    let (l, b, _) = problem();
    let cycles = |f: &dyn Fn(&mut GpuDevice) -> u64| {
        let mut dev = GpuDevice::new(toy());
        f(&mut dev)
    };
    let a = cycles(&|d| levelset::solve(d, &l, &b).unwrap().stats.cycles);
    let bb = cycles(&|d| syncfree::solve(d, &l, &b).unwrap().stats.cycles);
    let c = cycles(&|d| writing_first::solve(d, &l, &b).unwrap().stats.cycles);
    assert!(a > bb, "level-set {a} must exceed syncfree {bb}");
    assert!(bb > c, "syncfree {bb} must exceed capellini {c}");
}

#[test]
fn csc_formulation_solves_the_example() {
    let (l, b, x_true) = problem();
    let mut dev = GpuDevice::new(toy());
    let out = syncfree_csc::solve(&mut dev, &l, &b).unwrap();
    linalg::assert_solutions_close(&out.x, &x_true, 1e-12);
    assert!(out.stats.atomic_ops > 0, "the scatter form must use atomics");
}

#[test]
fn traces_are_bitwise_reproducible() {
    let (l, b, _) = problem();
    let run = || {
        let mut dev = GpuDevice::new(toy());
        let mut tr = capellini_sptrsv::simt::Trace::new();
        writing_first::solve_traced(&mut dev, &l, &b, &mut tr).unwrap();
        tr.render()
    };
    assert_eq!(run(), run());
}
