//! SpTRSM equivalence suite: batched multi-RHS solving must be
//! **bit-identical** to solving the same columns one at a time, for every
//! live algorithm, under both memory models (sequentially consistent and
//! relaxed — with racecheck armed) and both spin models (replay and
//! fast-forward).
//!
//! The evaluation trio (SyncFree, cuSPARSE-like, Writing-First) runs its
//! dedicated batched kernel, whose per-column floating-point schedule —
//! ascending-`j` consume order, reduction-tree shape, `(b - sum)/diag`
//! finalize — matches the single-RHS kernel exactly; every other algorithm
//! loops single solves. Either way the solution block must carry exactly
//! the bits of the column-by-column solves.

use capellini_sptrsv::core::{solve_multi_simulated, solve_simulated, Algorithm};
use capellini_sptrsv::prelude::*;
use capellini_sptrsv::sparse::paper_example;

/// Store-buffer drain delay for the relaxed configurations (matches the
/// `memory_model.rs` audit suite).
const DRAIN_TICKS: u64 = 2_000;

const NRHS: usize = 3;

fn matrices() -> Vec<(&'static str, LowerTriangularCsr)> {
    vec![
        ("paper", paper_example()),
        ("graph", gen::powerlaw(300, 3.0, 61)),
        ("chain", gen::chain(100, 1, 62)),
    ]
}

/// A row-major `n × NRHS` block of distinct right-hand sides, plus its
/// columns.
fn rhs_block(n: usize) -> (Vec<f64>, Vec<Vec<f64>>) {
    let mut bs = vec![0.0; n * NRHS];
    let mut cols = Vec::new();
    for r in 0..NRHS {
        let b: Vec<f64> = (0..n)
            .map(|i| ((i * (2 * r + 3) + 5 * r + 1) % 23) as f64 - 11.0)
            .collect();
        for i in 0..n {
            bs[i * NRHS + r] = b[i];
        }
        cols.push(b);
    }
    (bs, cols)
}

/// The heart of the suite: batched == looped, bitwise, per configuration.
fn check_all_algorithms(cfg: &DeviceConfig, cfg_name: &str) {
    for (mname, l) in matrices() {
        let (bs, cols) = rhs_block(l.n());
        for algo in Algorithm::all_live() {
            let multi = solve_multi_simulated(cfg, &l, &bs, NRHS, algo)
                .unwrap_or_else(|e| panic!("{cfg_name}/{mname}/{}: {e}", algo.label()));
            assert_eq!(multi.x.len(), l.n() * NRHS);
            for (r, b) in cols.iter().enumerate() {
                let single = solve_simulated(cfg, &l, b, algo)
                    .unwrap_or_else(|e| panic!("{cfg_name}/{mname}/{}: {e}", algo.label()));
                for i in 0..l.n() {
                    assert_eq!(
                        multi.x[i * NRHS + r].to_bits(),
                        single.x[i].to_bits(),
                        "{cfg_name}/{mname}/{}: rhs {r}, row {i}: batched {} != looped {}",
                        algo.label(),
                        multi.x[i * NRHS + r],
                        single.x[i]
                    );
                }
            }
        }
    }
}

fn base() -> DeviceConfig {
    DeviceConfig::pascal_like().scaled_down(4)
}

#[test]
fn batched_equals_looped_sc_replay() {
    let cfg = base().with_spin_model(SpinModel::Replay);
    check_all_algorithms(&cfg, "sc/replay");
}

#[test]
fn batched_equals_looped_sc_fastforward() {
    let cfg = base().with_spin_model(SpinModel::FastForward);
    check_all_algorithms(&cfg, "sc/fastforward");
}

#[test]
fn batched_equals_looped_relaxed_replay() {
    let cfg = base()
        .with_memory_model(MemoryModel::relaxed(DRAIN_TICKS))
        .with_spin_model(SpinModel::Replay);
    check_all_algorithms(&cfg, "relaxed/replay");
}

#[test]
fn batched_equals_looped_relaxed_fastforward() {
    let cfg = base()
        .with_memory_model(MemoryModel::relaxed(DRAIN_TICKS))
        .with_spin_model(SpinModel::FastForward);
    check_all_algorithms(&cfg, "relaxed/fastforward");
}

/// Racecheck must stay silent for the batched kernels: their single fence +
/// single flag per row publishes all `k` components race-free.
#[test]
fn batched_kernels_pass_racecheck() {
    let cfg = base()
        .with_memory_model(MemoryModel::racecheck(DRAIN_TICKS))
        .with_spin_model(SpinModel::Replay);
    check_all_algorithms(&cfg, "racecheck/replay");
}

#[test]
fn batched_kernels_pass_racecheck_fastforward() {
    let cfg = base()
        .with_memory_model(MemoryModel::racecheck(DRAIN_TICKS))
        .with_spin_model(SpinModel::FastForward);
    check_all_algorithms(&cfg, "racecheck/fastforward");
}

/// Scheduled has no dedicated SpTRSM kernel, so `solve_multi` takes the
/// looped warm-solve fallback — which must still match the cold batched
/// path bitwise, through the pooled per-unit flag buffers, even on a
/// clustered engine.
#[test]
fn session_scheduled_fallback_matches_cold_batched() {
    use capellini_sptrsv::core::SolverSession;
    for threads in [1, 4] {
        let cfg = base().with_engine_threads(threads);
        for (mname, l) in matrices() {
            let (bs, _) = rhs_block(l.n());
            let cold = solve_multi_simulated(&cfg, &l, &bs, NRHS, Algorithm::Scheduled).unwrap();
            let mut session = SolverSession::with_algorithm(&cfg, l.clone(), Algorithm::Scheduled);
            assert!(!session.batched_kernel_available());
            for round in 0..2 {
                let warm = session.solve_multi(&bs, NRHS).unwrap();
                for (w, c) in warm.x.iter().zip(&cold.x) {
                    assert_eq!(
                        w.to_bits(),
                        c.to_bits(),
                        "{mname}: scheduled session round {round} ({threads} engine threads) \
                         diverged from cold batched"
                    );
                }
                assert_eq!(warm.preprocessing_ms, 0.0);
            }
        }
    }
}

/// The session layer's batched path agrees with the cold batched path for
/// the trio (the bit-identity contract carries through pooled buffers).
#[test]
fn session_batched_matches_cold_batched() {
    use capellini_sptrsv::core::SolverSession;
    let cfg = base();
    for (mname, l) in matrices() {
        let (bs, _) = rhs_block(l.n());
        for algo in [
            Algorithm::SyncFree,
            Algorithm::CusparseLike,
            Algorithm::CapelliniWritingFirst,
        ] {
            let cold = solve_multi_simulated(&cfg, &l, &bs, NRHS, algo).unwrap();
            let mut session = SolverSession::with_algorithm(&cfg, l.clone(), algo);
            for round in 0..2 {
                let warm = session.solve_multi(&bs, NRHS).unwrap();
                for (w, c) in warm.x.iter().zip(&cold.x) {
                    assert_eq!(
                        w.to_bits(),
                        c.to_bits(),
                        "{mname}/{}: session round {round} diverged from cold batched",
                        algo.label()
                    );
                }
                assert_eq!(warm.preprocessing_ms, 0.0);
            }
        }
    }
}
