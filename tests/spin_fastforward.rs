//! Differential suite: `SpinModel::FastForward` must be observationally
//! equivalent to `SpinModel::Replay` — identical `LaunchStats`, solutions,
//! traces, and profiles on every live kernel, across memory models — while
//! doing far fewer scheduler heap events. The closed-form spin accounting
//! of DESIGN.md §9 is pinned here.

use capellini_sptrsv::core::kernels::{
    cusparse_like, hybrid, levelset, naive, syncfree, syncfree_csc, two_phase, writing_first,
};
use capellini_sptrsv::prelude::*;
use capellini_sptrsv::simt::config::StoreScope;
use capellini_sptrsv::simt::{GpuDevice, ProfileMode, Trace};
use capellini_sptrsv::sparse::{gen, paper_example};

type Solve =
    fn(
        &mut GpuDevice,
        &LowerTriangularCsr,
        &[f64],
    ) -> Result<capellini_sptrsv::core::kernels::SimSolve, capellini_sptrsv::simt::SimtError>;

fn kernels() -> Vec<(&'static str, Solve)> {
    vec![
        ("writing_first", writing_first::solve as Solve),
        ("syncfree", syncfree::solve as Solve),
        ("syncfree_csc", syncfree_csc::solve as Solve),
        ("two_phase", two_phase::solve as Solve),
        ("levelset", levelset::solve as Solve),
        ("cusparse_like", cusparse_like::solve as Solve),
        ("hybrid", hybrid::solve as Solve),
    ]
}

/// A miniature of the evaluation dataset: the paper's 8×8 example, a
/// serial chain (worst-case spin depth), a random DAG, and a banded
/// matrix (mixed level widths).
fn matrices() -> Vec<(&'static str, LowerTriangularCsr)> {
    vec![
        ("paper8", paper_example()),
        ("chain256", gen::chain(256, 1, 7)),
        ("randomk", gen::random_k(600, 3, 600, 42)),
        ("banded", gen::banded(400, 5, 0.6, 7)),
    ]
}

fn base_cfg() -> DeviceConfig {
    DeviceConfig::pascal_like().scaled_down(4)
}

fn rhs(l: &LowerTriangularCsr) -> (Vec<f64>, Vec<f64>) {
    let x_true: Vec<f64> = (0..l.n()).map(|i| (i % 13) as f64 - 6.0).collect();
    let b = linalg::rhs_for_solution(l, &x_true);
    (x_true, b)
}

fn diff_one(name: &str, mname: &str, solve: Solve, l: &LowerTriangularCsr, cfg: &DeviceConfig) {
    let (_, b) = rhs(l);
    let run = |model: SpinModel| {
        let mut dev = GpuDevice::new(cfg.clone().with_spin_model(model));
        solve(&mut dev, l, &b).map(|o| (format!("{:?}", o.stats), o.x))
    };
    let replay = run(SpinModel::Replay);
    let ff = run(SpinModel::FastForward);
    match (replay, ff) {
        (Ok((rs, rx)), Ok((fs, fx))) => {
            assert_eq!(rs, fs, "{name} on {mname}: stats diverged");
            assert_eq!(rx, fx, "{name} on {mname}: solution diverged");
        }
        (r, f) => panic!("{name} on {mname}: outcome diverged: replay={r:?} ff={f:?}"),
    }
}

fn diff_all(cfg: &DeviceConfig) {
    for (mname, l) in &matrices() {
        for (name, solve) in &kernels() {
            diff_one(name, mname, *solve, l, cfg);
        }
    }
}

#[test]
fn stats_bit_exact_sc() {
    diff_all(&base_cfg());
}

#[test]
fn stats_bit_exact_relaxed_warp_scope() {
    diff_all(&base_cfg().with_memory_model(MemoryModel::relaxed(2_000)));
}

#[test]
fn stats_bit_exact_relaxed_sm_scope() {
    diff_all(&base_cfg().with_memory_model(MemoryModel::Relaxed {
        drain_ticks: 2_000,
        scope: StoreScope::Sm,
        racecheck: false,
    }));
}

#[test]
fn stats_bit_exact_racecheck() {
    diff_all(&base_cfg().with_memory_model(MemoryModel::racecheck(2_000)));
}

/// The fixture that caught the lazy-SM wake-projection bug: on a lazily
/// advanced SM, the anchor-visit lattice can lag behind a displacement
/// that pushed the real poll to-or-past the store, so a naive projection
/// kicks a full period late. `golden_traces.rs` pins Replay against the
/// pre-optimization engine; this pins FastForward against Replay at the
/// same size.
#[test]
fn stats_bit_exact_on_golden_fixture() {
    let l = gen::random_k(3000, 3, 3000, 42);
    diff_one(
        "syncfree",
        "randomk3000",
        syncfree::solve as Solve,
        &l,
        &base_cfg(),
    );
    diff_one(
        "writing_first",
        "randomk3000",
        writing_first::solve as Solve,
        &l,
        &base_cfg(),
    );
}

/// Traced launches must interleave reconstructed spin iterations into the
/// event stream exactly where the replayed polls would have been.
#[test]
fn traces_bit_exact() {
    let l = gen::random_k(600, 3, 600, 42);
    let (_, b) = rhs(&l);
    let run_sf = |model: SpinModel| {
        let mut dev = GpuDevice::new(base_cfg().with_spin_model(model));
        let mut tr = Trace::new();
        syncfree::solve_traced(&mut dev, &l, &b, &mut tr).unwrap();
        tr.render()
    };
    assert_eq!(
        run_sf(SpinModel::Replay),
        run_sf(SpinModel::FastForward),
        "syncfree trace diverged"
    );
    let run_wf = |model: SpinModel| {
        let mut dev = GpuDevice::new(base_cfg().with_spin_model(model));
        let mut tr = Trace::new();
        writing_first::solve_traced(&mut dev, &l, &b, &mut tr).unwrap();
        tr.render()
    };
    assert_eq!(
        run_wf(SpinModel::Replay),
        run_wf(SpinModel::FastForward),
        "writing_first trace diverged"
    );
}

/// Sampled stall-attribution profiles must also be reconstructed
/// bit-exactly (per-bucket `spin_poll` slots included).
#[test]
fn profiles_bit_exact() {
    let l = gen::random_k(600, 3, 600, 42);
    let (_, b) = rhs(&l);
    let run = |model: SpinModel| {
        let mut dev = GpuDevice::new(
            base_cfg()
                .with_profile(ProfileMode::sampled(64))
                .with_spin_model(model),
        );
        syncfree::solve(&mut dev, &l, &b).unwrap();
        format!("{:?}", dev.take_profiles())
    };
    assert_eq!(
        run(SpinModel::Replay),
        run(SpinModel::FastForward),
        "profile diverged"
    );
}

/// The point of the optimization: a serial chain makes every warp spin for
/// a long time, and parking must turn those poll round-trips into O(1)
/// wakes. The ≥5× floor here is deliberately far below the typical
/// reduction (the issue's acceptance criterion).
#[test]
fn fast_forward_slashes_heap_events() {
    let l = gen::chain(2048, 1, 7);
    let (_, b) = rhs(&l);
    let run = |model: SpinModel| {
        let mut dev = GpuDevice::new(base_cfg().with_spin_model(model));
        let out = syncfree::solve(&mut dev, &l, &b).unwrap();
        (dev.last_launch_heap_events(), out.stats.cycles)
    };
    let (replay_events, replay_cycles) = run(SpinModel::Replay);
    let (ff_events, ff_cycles) = run(SpinModel::FastForward);
    assert_eq!(replay_cycles, ff_cycles, "simulated time must not change");
    assert!(
        ff_events * 5 <= replay_events,
        "expected >=5x heap-event reduction, got {replay_events} -> {ff_events}"
    );
}

/// Parked warps that nothing can wake are a provable deadlock: FastForward
/// reports it the moment the scheduler heap drains, with the waiter graph
/// attached, instead of burning the deadlock window like Replay.
#[test]
fn naive_intra_warp_cycle_deadlocks_immediately() {
    // A bidiagonal chain makes 31 of every 32 dependencies intra-warp, so
    // the naive kernel's warps all end up spinning on flags that no
    // runnable warp can ever set.
    let l = gen::chain(64, 1, 1);
    let (_, b) = rhs(&l);
    let cfg = DeviceConfig::pascal_like(); // deadlock_window = 2_000_000
    let mut dev = GpuDevice::new(cfg.clone().with_spin_model(SpinModel::FastForward));
    let err = naive::solve(&mut dev, &l, &b).unwrap_err();
    match err {
        SimtError::Deadlock {
            cycle,
            last_progress_cycle,
            warps,
            ..
        } => {
            assert!(
                cycle.saturating_sub(last_progress_cycle) < cfg.deadlock_window,
                "FastForward should not wait out the deadlock window \
                 (cycle {cycle}, last progress {last_progress_cycle})"
            );
            assert!(
                warps.iter().any(|w| !w.waiting_on.is_empty()),
                "deadlock snapshot should carry the waiter graph: {warps:?}"
            );
        }
        other => panic!("expected deadlock, got {other:?}"),
    }
}

/// The clustered engine (`with_engine_threads`) must report the *same*
/// provable deadlock with byte-identical diagnostics — same cycle, same
/// last-progress, same waiter graph in the same order — as the serial
/// engine. Error paths are where divergence would hide: the deadlock
/// snapshot reads the spin registry that eager cluster advancement mutates.
#[test]
fn clustered_deadlock_diagnostics_are_byte_identical() {
    let l = gen::chain(64, 1, 1);
    let (_, b) = rhs(&l);
    let cfg = DeviceConfig::pascal_like().with_spin_model(SpinModel::FastForward);
    let run = |threads: usize| {
        let mut dev = GpuDevice::new(cfg.clone().with_engine_threads(threads));
        let err = naive::solve(&mut dev, &l, &b).unwrap_err();
        assert!(
            matches!(err, SimtError::Deadlock { .. }),
            "expected deadlock at {threads} engine threads, got {err:?}"
        );
        err.to_string()
    };
    let serial = run(1);
    for threads in [2, 4, 8] {
        assert_eq!(
            run(threads),
            serial,
            "deadlock diagnostics diverged at {threads} engine threads"
        );
    }
}
